// Package core implements the paper's primary contribution: the TDM
// connection scheduler of the predictive multiplexed switch (paper §4).
//
// The scheduler owns K configuration matrices B(0) ... B(K-1), one per
// multiplexed time slot. Each matrix is a partial permutation of the
// crossbar. Two counters drive it:
//
//   - The TDM counter selects which configuration is copied into the fabric's
//     configuration register at each slot boundary, skipping slots whose
//     configuration is all zeros so that the effective multiplexing degree
//     shrinks to the active working set.
//   - The SL counter selects which slot the scheduling-logic array will try
//     to insert pending requests into, round-robin over the dynamic slots.
//
// One scheduling pass is one SL clock cycle of the hardware: the
// pre-scheduling logic (Table 1) compares the request matrix R against B*
// (the OR of all configurations) and the selected slot's B(s) to produce the
// change matrix L, and the NxN array of SL modules (Table 2, Figure 3)
// resolves L against the propagating port-availability signals A (outputs)
// and D (inputs), establishing and releasing connections. The pass is
// modeled bit-exactly; its hardware cost is modeled by the Table 3 latency
// figures (see latency.go).
//
// All five extensions listed in §4 are implemented: multiple SL copies
// (Params.SLCopies), multi-slot connections (AddBandwidth), request latching
// with explicit eviction (Params.LatchRequests, Evict), flush (Flush), and
// preloaded pinned configurations with dynamic coexistence (LoadConfig,
// PinSlot).
package core

import (
	"fmt"
	"math/bits"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/probe"
	"pmsnet/internal/sim"
)

// Params configures a Scheduler.
type Params struct {
	// N is the crossbar port count.
	N int
	// K is the number of configuration registers (the maximum multiplexing
	// degree).
	K int
	// RotatePriority enables the round-robin rotation of the scheduling
	// array's priority origin (paper §4: "a more fair schedule can be
	// obtained by rotating the priority"). Without it, low-numbered ports
	// always win contention.
	RotatePriority bool
	// SkipEmptySlots enables the TDM counter feature that skips a count t
	// whose configuration B(t) is all zeros, reducing the effective
	// multiplexing degree.
	SkipEmptySlots bool
	// SLCopies is the number of scheduling-logic units working on different
	// slots in the same pass (extension 1). Must be at least 1 and at most K.
	SLCopies int
	// LatchRequests keeps a connection established after the NIC drops its
	// request (extension 3); connections are then released only by Evict or
	// Flush. When false, a connection is released as soon as its request
	// disappears.
	LatchRequests bool
	// CanEstablish, when non-nil, adds a fabric-realizability constraint to
	// the scheduling logic: a connection u→v is only established in a slot
	// whose configuration b (not yet containing u→v) satisfies
	// CanEstablish(b, u, v). Crossbars need no constraint beyond free ports;
	// fabrics with limited permutation capability — multistage networks —
	// use this hook (paper §4: "more complicated constraints may be derived
	// for fabrics that have limited permutation capabilities").
	//
	// With Memoize the hook must be a pure function of (b, u, v): cached
	// passes replay recorded decisions without re-invoking it.
	CanEstablish func(b *bitmat.Matrix, u, v int) bool
	// Memoize enables the scheduling-pass cache: passes whose full scheduler
	// state and request matrix have been seen before replay the recorded
	// grant set instead of re-running the scheduling array. The cache is
	// exact (results are bit-identical with and without it) — see
	// schedcache.go. Only the paper algorithm memoizes: the iSLIP matcher
	// carries pointer state the cache key does not cover, so withDefaults
	// forces Memoize off for the alternative algorithms.
	Memoize bool
	// Algorithm selects the matching algorithm a pass runs: the paper-exact
	// Tables 1–2 scheduling array (the default), iSLIP, or wavefront
	// matching. See match.go for the alternatives' semantics and provenance.
	Algorithm Algorithm
	// ShardBounds, when non-nil, splits the rows into contiguous shards for
	// the paper algorithm's sparse pass: shard i owns rows
	// [ShardBounds[i], ShardBounds[i+1]). Shards precompute their rows' change
	// cells independently (possibly in parallel via ShardRun); grants are then
	// merged serially in the exact rotated row order, so results are
	// bit-identical to unsharded scheduling. Bounds must start at 0, end at N
	// and be strictly ascending — callers align them to the fabric's leaf
	// boundaries.
	ShardBounds []int
	// ShardRun executes fn(i) for every shard i in [0, n), returning only
	// when all calls completed. nil runs the shards serially in the calling
	// goroutine. A parallel executor (runner.Pool.Run) must keep per-shard
	// work on distinct goroutines only — the scheduler guarantees shards
	// touch disjoint state during the parallel phase.
	ShardRun func(n int, fn func(int))
	// WarmStart enables the warm-started incremental pass (warmpass.go):
	// PassWarm seeds each pass from the state the previous pass left behind
	// and re-evaluates only the dirty-row closure, consuming the request
	// matrix's delta journal. Bit-identical to the cold pass; paper algorithm
	// only (withDefaults forces it off otherwise, like Memoize).
	WarmStart bool
}

// withDefaults normalizes zero values.
func (p Params) withDefaults() Params {
	if p.SLCopies == 0 {
		p.SLCopies = 1
	}
	if p.Algorithm != AlgPaper {
		// The memo cache key covers (state, cursors, R); iSLIP's grant/accept
		// pointers live outside it, and wavefront gains little from replay.
		p.Memoize = false
		// The warm masks encode the paper's Table 1 terms; the alternative
		// matchers evaluate the dense request form directly.
		p.WarmStart = false
	}
	return p
}

// Validate reports an error for inconsistent parameters.
func (p Params) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("core: port count N=%d must be positive", p.N)
	}
	if p.K <= 0 {
		return fmt.Errorf("core: multiplexing degree K=%d must be positive", p.K)
	}
	if p.SLCopies < 1 || p.SLCopies > p.K {
		return fmt.Errorf("core: SLCopies=%d must be in [1,%d]", p.SLCopies, p.K)
	}
	known := false
	for _, a := range algorithmValues {
		if p.Algorithm == a {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("core: unknown algorithm %d (valid: %v)", int(p.Algorithm), AlgorithmNames())
	}
	if p.ShardBounds != nil {
		b := p.ShardBounds
		if len(b) < 2 || b[0] != 0 || b[len(b)-1] != p.N {
			return fmt.Errorf("core: shard bounds %v must run from 0 to N=%d", b, p.N)
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				return fmt.Errorf("core: shard bounds %v not strictly ascending", b)
			}
		}
	}
	return nil
}

// Change records one connection established or released by a pass.
type Change struct {
	Src, Dst int
	Slot     int
}

// PassResult summarizes one scheduling pass. Its slices are owned by the
// Scheduler (scratch buffers on a computed pass, cache entries on a replayed
// one): they are valid until the next Pass or ScheduleSlot call and must not
// be mutated or retained by the caller.
type PassResult struct {
	// Slots lists the slot indices the pass scheduled into (SLCopies long,
	// unless fewer dynamic slots exist).
	Slots []int
	// Established and Released list connection changes in scan order.
	Established []Change
	Released    []Change
}

// Stats counts scheduler activity since construction.
type Stats struct {
	Passes      uint64
	Established uint64
	Released    uint64
	Flushes     uint64
	Evictions   uint64
	// CacheHits and CacheMisses count memoized-pass lookups (zero unless
	// Params.Memoize). They are the only counters allowed to differ between
	// cache-on and cache-off runs.
	CacheHits   uint64
	CacheMisses uint64
	// WarmHits counts warm passes served incrementally, WarmMisses full mask
	// rebuilds, and DirtyRows the rows re-evaluated across incremental
	// passes (zero unless Params.WarmStart). Like the cache counters, they
	// are pure telemetry: the only counters allowed to differ between
	// warm-on and warm-off runs.
	WarmHits   uint64
	WarmMisses uint64
	DirtyRows  uint64
}

// Scheduler is the TDM connection scheduler. It is not safe for concurrent
// use; the simulation engine is single-threaded by design.
type Scheduler struct {
	p       Params
	configs []*bitmat.Matrix
	pinned  []bool
	latch   *bitmat.Sparse
	bstar   *bitmat.Matrix

	// Incrementally-maintained per-pair slot index. Every configuration is a
	// partial permutation, so a slot holds at most one connection per input
	// row and per output column; the index stores it directly. All config
	// mutation funnels through setConn/clearConn (including cache replays and
	// preloads), which also keep B* current — the former lazy dirty/refresh
	// cycle is gone, and SlotsOf/slotCountOf/GrantRow drop from O(K·N/64)
	// word scans to O(K) array reads.
	rowDst     [][]int32 // [slot][u] = v of the connection u→v, or -1
	colSrc     [][]int32 // [slot][v] = u of the connection u→v, or -1
	cfgRowMask [][]uint64 // [slot]: AI bitmask (input u occupied)
	cfgColMask [][]uint64 // [slot]: AO bitmask (output v occupied)
	cfgCount   []int      // [slot]: established connections

	slCursor  int
	tdmCursor int
	rot       int

	stats Stats

	// Reusable scratch, sized once at construction so the per-pass hot path
	// stays allocation-free after warmup.
	effBuf      *bitmat.Matrix // effectiveRequests result under latching
	lBuf        *bitmat.Matrix // PreSchedule change matrix
	occOut      []uint64       // AO bitmask: output v occupied in the slot
	occIn       []uint64       // AI bitmask: input u occupied in the slot
	colBuf      []int          // rotated set-column scan of one L row
	estBuf      []Change       // established changes of the current pass
	relBuf      []Change       // released changes of the current pass
	slotsBuf    []int          // slots visited by the current pass
	latchClrBuf []uint32       // packed latch clears of the current pass
	fabricBuf   *bitmat.Matrix // NextFabricSlot result
	invBuf      *bitmat.Matrix // CheckInvariants B* recomputation

	// Sparse-pass scratch (sparsepass.go).
	activeMask  []uint64 // row mask: rows the sparse pass must visit
	pendingMask []uint64 // per-pass row mask: rows with a request not in B*
	rowsBuf     []int    // rotated active-row iteration order
	cellBuf     []int32  // one row's change cells, ascending
	wordRowMin  int      // row nonzeros at which to switch to the word path

	// Shard scratch (non-nil only with Params.ShardBounds): per-shard cell
	// arenas and the per-row (shard, offset, length) records that resolve a
	// row's precomputed cells after the parallel phase.
	shardArena [][]int32
	rowCellPos []int32
	rowCellLen []int32
	rowShard   []int32

	// Warm-start state (warmpass.go); nil unless Params.WarmStart.
	warm *warmState

	// Alternative-algorithm scratch (match.go); nil for AlgPaper.
	match *matchState

	// Observability (nil when off). now supplies timestamps for emitted
	// events; the scheduler has no clock of its own.
	probe *probe.Probe
	now   func() sim.Time

	// Memoized-pass state (nil cache when Params.Memoize is off). stateID
	// names the current observable scheduler state (configs, latch, pinned);
	// every mutation mints a fresh ID from nextID, so a recorded transition
	// keyed on a stateID can never be replayed against a different state.
	cache   *passCache
	stateID uint64
	nextID  uint64
}

// NewScheduler builds a scheduler. Invalid Params return an error with the
// offending field named, so callers that assemble parameters at run time
// (the TDM network builds one per Run) surface misconfiguration instead of
// panicking mid-simulation.
func NewScheduler(p Params) (*Scheduler, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid scheduler parameters: %w", err)
	}
	s := &Scheduler{
		p:          p,
		configs:    make([]*bitmat.Matrix, p.K),
		pinned:     make([]bool, p.K),
		latch:      bitmat.NewSparse(p.N, p.N),
		bstar:      bitmat.NewSquare(p.N),
		lBuf:       bitmat.NewSquare(p.N),
		rowDst:     make([][]int32, p.K),
		colSrc:     make([][]int32, p.K),
		cfgRowMask: make([][]uint64, p.K),
		cfgColMask: make([][]uint64, p.K),
		cfgCount:   make([]int, p.K),
	}
	occWords := (p.N + 63) / 64
	for i := range s.configs {
		s.configs[i] = bitmat.NewSquare(p.N)
		s.rowDst[i] = make([]int32, p.N)
		s.colSrc[i] = make([]int32, p.N)
		for j := 0; j < p.N; j++ {
			s.rowDst[i][j] = -1
			s.colSrc[i][j] = -1
		}
		s.cfgRowMask[i] = make([]uint64, occWords)
		s.cfgColMask[i] = make([]uint64, occWords)
	}
	if p.LatchRequests {
		s.effBuf = bitmat.NewSquare(p.N)
	}
	s.occOut = make([]uint64, occWords)
	s.occIn = make([]uint64, occWords)
	s.activeMask = make([]uint64, occWords)
	s.pendingMask = make([]uint64, occWords)
	s.wordRowMin = wordRowThreshold(p.N)
	if p.Memoize {
		s.cache = newPassCache()
	}
	if p.ShardBounds != nil {
		shards := len(p.ShardBounds) - 1
		s.shardArena = make([][]int32, shards)
		s.rowCellPos = make([]int32, p.N)
		s.rowCellLen = make([]int32, p.N)
		s.rowShard = make([]int32, p.N)
		for sh := 0; sh < shards; sh++ {
			for u := p.ShardBounds[sh]; u < p.ShardBounds[sh+1]; u++ {
				s.rowShard[u] = int32(sh)
			}
		}
	}
	if p.WarmStart {
		s.warm = &warmState{
			pending: make([]uint64, occWords),
			dirty:   make([]uint64, occWords),
			stale:   make([][]uint64, p.K),
		}
		for i := range s.warm.stale {
			s.warm.stale[i] = make([]uint64, occWords)
		}
	}
	if p.Algorithm != AlgPaper {
		s.match = newMatchState(p)
	}
	return s, nil
}

// --- per-pair slot index ---

// setConn establishes u→v in a slot, updating the configuration matrix, the
// slot index, the per-slot occupancy masks and B* together. The caller must
// have verified the slot's row u and column v are free (partial-permutation
// discipline); every establish path does.
func (s *Scheduler) setConn(slot, u, v int) {
	s.configs[slot].Set(u, v)
	s.rowDst[slot][u] = int32(v)
	s.colSrc[slot][v] = int32(u)
	maskSet(s.cfgRowMask[slot], u)
	maskSet(s.cfgColMask[slot], v)
	s.cfgCount[slot]++
	s.bstar.Set(u, v)
	s.warmDirty(u)
}

// clearConn releases u→v from a slot. The connection must be present there.
// B* drops the bit only when the pair is gone from every slot (AddBandwidth
// can hold it in several).
func (s *Scheduler) clearConn(slot, u, v int) {
	s.configs[slot].Clear(u, v)
	s.rowDst[slot][u] = -1
	s.colSrc[slot][v] = -1
	maskClear(s.cfgRowMask[slot], u)
	maskClear(s.cfgColMask[slot], v)
	s.cfgCount[slot]--
	if s.slotCountOf(u, v) == 0 {
		s.bstar.Clear(u, v)
	}
	s.warmDirty(u)
}

// latchSet and latchClear are the latch-mutation funnels: every latch bit
// change flows through them (finishSlot, cache replay, evictions) so the
// warm path sees the row as dirty. Flush paths bulk-reset the latch and
// call warmInvalidate instead.
func (s *Scheduler) latchSet(u, v int) {
	s.latch.Set(u, v)
	s.warmDirty(u)
}

func (s *Scheduler) latchClear(u, v int) {
	s.latch.Clear(u, v)
	s.warmDirty(u)
}

// clearSlot releases every connection of a slot through clearConn, in
// ascending row order. O(connections), not O(N²/64).
func (s *Scheduler) clearSlot(slot int) {
	mask := s.cfgRowMask[slot]
	for w, word := range mask {
		for word != 0 {
			u := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			s.clearConn(slot, u, int(s.rowDst[slot][u]))
		}
	}
}

// MustScheduler is NewScheduler for static configurations known to be valid
// (tests, table generators); it panics on error.
func MustScheduler(p Params) *Scheduler {
	s, err := NewScheduler(p)
	if err != nil {
		panic(err)
	}
	return s
}

// Params returns the scheduler's configuration.
func (s *Scheduler) Params() Params { return s.p }

// SetProbe attaches an observability probe; now supplies event timestamps
// (typically the simulation engine's clock). A nil probe detaches. Emission is
// purely observational: scheduling decisions and statistics are identical with
// and without a probe.
func (s *Scheduler) SetProbe(p *probe.Probe, now func() sim.Time) {
	if p == nil {
		s.probe, s.now = nil, nil
		return
	}
	if now == nil {
		panic("core: SetProbe requires a clock")
	}
	s.probe, s.now = p, now
}

// Stats returns activity counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Config returns a copy of configuration matrix B(slot).
func (s *Scheduler) Config(slot int) *bitmat.Matrix {
	s.checkSlot(slot)
	return s.configs[slot].Clone()
}

// BStar returns a copy of B*, the OR of all configuration matrices: every
// connection currently established in any slot. B* is maintained
// incrementally by the connection index, so this is just a copy.
func (s *Scheduler) BStar() *bitmat.Matrix {
	return s.bstar.Clone()
}

// Connected reports whether the connection src→dst is established in any
// slot (the B* bit).
func (s *Scheduler) Connected(src, dst int) bool {
	return s.bstar.Get(src, dst)
}

// SlotsOf returns the slots in which src→dst is established (more than one
// under AddBandwidth).
func (s *Scheduler) SlotsOf(src, dst int) []int {
	return s.AppendSlotsOf(nil, src, dst)
}

// AppendSlotsOf appends the slots in which src→dst is established to dst
// and returns the extended slice — the allocation-free variant of SlotsOf
// for hot paths that hold a reusable buffer. The slot index makes this O(K)
// array reads instead of K row-word scans.
func (s *Scheduler) AppendSlotsOf(dst []int, src, dstPort int) []int {
	for i := 0; i < s.p.K; i++ {
		if s.rowDst[i][src] == int32(dstPort) {
			dst = append(dst, i)
		}
	}
	return dst
}

// slotCountOf returns the number of slots holding src→dst without
// materializing the slot list.
func (s *Scheduler) slotCountOf(src, dst int) int {
	n := 0
	for i := 0; i < s.p.K; i++ {
		if s.rowDst[i][src] == int32(dst) {
			n++
		}
	}
	return n
}

// Connections returns the number of distinct established connections.
func (s *Scheduler) Connections() int {
	return s.bstar.Count()
}

// ActiveSlots returns the indices of slots with a non-empty configuration —
// the effective multiplexing degree the TDM counter cycles through when
// empty-slot skipping is on.
func (s *Scheduler) ActiveSlots() []int {
	return s.AppendActiveSlots(nil)
}

// AppendActiveSlots appends the active slot indices to dst and returns the
// extended slice — the allocation-free variant of ActiveSlots.
func (s *Scheduler) AppendActiveSlots(dst []int) []int {
	for i, n := range s.cfgCount {
		if n > 0 {
			dst = append(dst, i)
		}
	}
	return dst
}

// ActiveSlotCount returns the number of non-empty slots without
// materializing the index list.
func (s *Scheduler) ActiveSlotCount() int {
	n := 0
	for _, c := range s.cfgCount {
		if c > 0 {
			n++
		}
	}
	return n
}

// AppendSlotConns appends every connection of a slot to dst in ascending
// row order and returns the extended slice — the data-plane grant snapshot,
// read straight from the slot index in O(connections) instead of N
// first-in-row word scans.
func (s *Scheduler) AppendSlotConns(dst []Change, slot int) []Change {
	s.checkSlot(slot)
	mask := s.cfgRowMask[slot]
	for w, word := range mask {
		for word != 0 {
			u := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			dst = append(dst, Change{Src: u, Dst: int(s.rowDst[slot][u]), Slot: slot})
		}
	}
	return dst
}

func (s *Scheduler) checkSlot(slot int) {
	if slot < 0 || slot >= s.p.K {
		panic(fmt.Sprintf("core: slot %d outside [0,%d)", slot, s.p.K))
	}
}

func (s *Scheduler) checkPort(u int) {
	if u < 0 || u >= s.p.N {
		panic(fmt.Sprintf("core: port %d outside [0,%d)", u, s.p.N))
	}
}

// --- TDM counter (fabric side) ---

// NextFabricSlot advances the TDM counter and returns the slot whose
// configuration should be copied to the fabric for the next time slot. With
// SkipEmptySlots it skips all-zero configurations (paper §4, Figure 2); if
// every configuration is empty it reports ok=false and the fabric stays
// idle. The returned matrix is a scheduler-owned scratch copy: it is valid
// until the next NextFabricSlot call and must not be mutated or retained.
func (s *Scheduler) NextFabricSlot() (slot int, cfg *bitmat.Matrix, ok bool) {
	for tried := 0; tried < s.p.K; tried++ {
		t := s.tdmCursor
		s.tdmCursor = (s.tdmCursor + 1) % s.p.K
		if s.p.SkipEmptySlots && s.cfgCount[t] == 0 {
			continue
		}
		if s.fabricBuf == nil {
			s.fabricBuf = bitmat.NewSquare(s.p.N)
		}
		s.fabricBuf.CopyFrom(s.configs[t])
		return t, s.fabricBuf, true
	}
	return -1, nil, false
}

// GrantRow returns the grant signal G_u for NIC u in the given slot: the
// output port u may send to during that slot, or -1 when u has no grant.
// At most one bit of a configuration row is set, so the grant is a single
// port.
func (s *Scheduler) GrantRow(slot, u int) int {
	s.checkSlot(slot)
	s.checkPort(u)
	return int(s.rowDst[slot][u])
}

// --- scheduling logic (SL side) ---

// effectiveRequests returns R | latch when latching is on, otherwise R.
// The latch matrix holds requests the scheduler has decided to remember
// after the NIC dropped them (extension 3). Under latching the result is
// the scheduler's effBuf scratch, valid until the next call.
func (s *Scheduler) effectiveRequests(r *bitmat.Matrix) *bitmat.Matrix {
	if !s.p.LatchRequests {
		return r
	}
	s.effBuf.CopyFrom(r)
	s.effBuf.Or(s.latch.Matrix())
	return s.effBuf
}

// PreSchedule computes the change matrix L of Table 1 for slot `slot` given
// request matrix r: L(u,v)=1 when the connection should be released from the
// slot (not requested but realized there) or established (requested and
// realized nowhere). The result is a scheduler-owned scratch matrix, valid
// until the next PreSchedule, ScheduleSlot or Pass call.
func (s *Scheduler) PreSchedule(r *bitmat.Matrix, slot int) *bitmat.Matrix {
	s.checkSlot(slot)
	s.checkShape(r)
	eff := s.effectiveRequests(r)

	// Release term: not requested, realized in slot s -> B(s) &^ Reff.
	l := s.lBuf
	l.CopyFrom(s.configs[slot])
	l.AndNot(eff)
	// Establish term: requested, realized nowhere -> Reff &^ B*, fused into
	// the same scan.
	l.OrAndNot(eff, s.bstar)
	return l
}

func (s *Scheduler) checkShape(m *bitmat.Matrix) {
	if m.Rows() != s.p.N || m.Cols() != s.p.N {
		panic(fmt.Sprintf("core: matrix is %dx%d, scheduler is %dx%d", m.Rows(), m.Cols(), s.p.N, s.p.N))
	}
}

// ScheduleSlot runs one SL-array evaluation (Table 2) against slot `slot`,
// mutating B(slot). It returns the changes it made in scheduler-owned
// scratch slices, valid until the next ScheduleSlot or Pass call. The array
// is scanned in the rotated priority order: rows from origin a, columns from
// origin b, with the availability signals A (per output column) and D (per
// input row) initialized from AO/AI and updated as connections are released
// and established, exactly as the propagating hardware signals would be.
func (s *Scheduler) ScheduleSlot(r *bitmat.Matrix, slot int) (established, released []Change) {
	s.estBuf = s.estBuf[:0]
	s.relBuf = s.relBuf[:0]
	s.latchClrBuf = s.latchClrBuf[:0]
	s.dispatchSlot(r, nil, slot)
	if len(s.estBuf)+len(s.relBuf) > 0 {
		// A direct caller mutated scheduler state outside Pass's cache
		// bookkeeping; retire the current state ID so no stale cached
		// transition can be replayed against the new state.
		s.invalidate()
	}
	return s.estBuf, s.relBuf
}

// occupancy bitmask helpers for the AO/AI vectors.
func maskTest(m []uint64, i int) bool { return m[i>>6]&(1<<(uint(i)&63)) != 0 }
func maskSet(m []uint64, i int)       { m[i>>6] |= 1 << (uint(i) & 63) }
func maskClear(m []uint64, i int)     { m[i>>6] &^= 1 << (uint(i) & 63) }

// dispatchSlot routes one slot evaluation to the configured matching
// algorithm. For the paper algorithm, a non-nil sp selects the sparse-path
// evaluation (bit-identical to the dense one — see sparsepass.go); the
// alternative matchers consume the dense form either way.
func (s *Scheduler) dispatchSlot(r *bitmat.Matrix, sp *bitmat.Sparse, slot int) {
	switch s.p.Algorithm {
	case AlgISLIP:
		s.scheduleSlotISLIP(r, slot)
	case AlgWavefront:
		s.scheduleSlotWavefront(r, slot)
	default:
		if sp != nil {
			s.scheduleSlotSparse(sp, slot)
		} else {
			s.scheduleSlot(r, slot)
		}
	}
}

// scheduleSlot is the allocation-free SL-array evaluation shared by
// ScheduleSlot and Pass. It appends changes to estBuf/relBuf (without
// resetting them, so one Pass accumulates across its SLCopies slots) and
// records latch clears in latchClrBuf for the memo cache.
func (s *Scheduler) scheduleSlot(r *bitmat.Matrix, slot int) {
	s.checkSlot(slot)
	if s.pinned[slot] {
		panic(fmt.Sprintf("core: ScheduleSlot on pinned slot %d", slot))
	}
	l := s.PreSchedule(r, slot)
	if l.IsZero() {
		return
	}
	b := s.configs[slot]
	n := s.p.N
	estStart, relStart := len(s.estBuf), len(s.relBuf)

	// A[v]: output v occupied in this slot (paper's AO). D[u]: input u
	// occupied (paper's AI). The slot index maintains both masks
	// incrementally; the pass works on copies it mutates as it goes.
	s.occOut = append(s.occOut[:0], s.cfgColMask[slot]...)
	s.occIn = append(s.occIn[:0], s.cfgRowMask[slot]...)

	a, bo := 0, 0
	if s.p.RotatePriority {
		a, bo = s.rot%n, s.rot%n
	}

	for i := 0; i < n; i++ {
		u := (a + i) % n
		if !l.RowAny(u) {
			continue
		}
		// Visit this row's L=1 cells in rotated column order, word-at-a-time.
		s.colBuf = l.AppendRowOnesFrom(s.colBuf[:0], u, bo)
		for _, v := range s.colBuf {
			// Each SL cell holds its own register bit B(s)(u,v), so it can
			// distinguish the release case (bit set, ports necessarily
			// occupied by this very connection) from an establish request
			// whose ports happen to be busy.
			if b.Get(u, v) {
				// Table 2 row (L=1, A=1, D=1): release, ports become free.
				s.clearConn(slot, u, v)
				maskClear(s.occOut, v)
				maskClear(s.occIn, u)
				s.relBuf = append(s.relBuf, Change{Src: u, Dst: v, Slot: slot})
			} else if !maskTest(s.occOut, v) && !maskTest(s.occIn, u) {
				if s.p.CanEstablish != nil && !s.p.CanEstablish(b, u, v) {
					// Fabric constraint: the connection would make this
					// slot's configuration unrealizable; treat it like a
					// port conflict and leave it for another slot.
					continue
				}
				// Table 2 row (L=1, A=0, D=0): establish, ports become busy.
				s.setConn(slot, u, v)
				maskSet(s.occOut, v)
				maskSet(s.occIn, u)
				s.estBuf = append(s.estBuf, Change{Src: u, Dst: v, Slot: slot})
			}
			// Mixed availability (Table 2 middle rows): no change; the
			// signals pass through unchanged.
		}
	}
	s.finishSlot(slot, estStart, relStart)
}

// finishSlot is the shared slot epilogue: latch maintenance and activity
// counters over the changes appended since (estStart, relStart).
func (s *Scheduler) finishSlot(slot, estStart, relStart int) {
	established := s.estBuf[estStart:]
	released := s.relBuf[relStart:]
	if s.p.LatchRequests {
		for _, c := range established {
			s.latchSet(c.Src, c.Dst)
		}
		for _, c := range released {
			// Released connections (evicted or flushed) lose their latch if
			// they are gone from every slot.
			if s.slotCountOf(c.Src, c.Dst) == 0 {
				s.latchClear(c.Src, c.Dst)
				s.latchClrBuf = append(s.latchClrBuf, uint32(c.Src)<<16|uint32(c.Dst))
			}
		}
	}
	s.stats.Established += uint64(len(established))
	s.stats.Released += uint64(len(released))
}

// Pass runs one scheduler pass: SLCopies scheduling-logic evaluations on the
// next dynamic (unpinned) slots in SL-counter order, then advances the
// priority rotation. It is the unit of work that costs PassLatency() in
// simulated time. With Params.Memoize a pass whose (state, cursors, request
// matrix) triple was seen before replays the recorded outcome instead of
// re-running the array; results are bit-identical either way. The returned
// slices are scheduler-owned and valid until the next Pass or ScheduleSlot
// call.
func (s *Scheduler) Pass(r *bitmat.Matrix) PassResult {
	return s.passProbed(r, nil, false)
}

// PassSparse is Pass taking the request matrix in sparse form. For the
// paper algorithm it runs the sparse-path evaluation — cost proportional to
// the active rows and their nonzeros instead of N²/64 words — and is
// bit-identical to Pass over sp's dense form, memo cache included. The
// alternative algorithms consume the dense backing either way.
func (s *Scheduler) PassSparse(sp *bitmat.Sparse) PassResult {
	return s.passProbed(sp.Matrix(), sp, false)
}

// passProbed wraps the pass body with probe emission when attached.
func (s *Scheduler) passProbed(r *bitmat.Matrix, sp *bitmat.Sparse, warm bool) PassResult {
	if s.probe == nil {
		return s.pass(r, sp, warm)
	}
	// The wrapper covers all three internal paths (no dynamic slots, cache
	// replay, computed) identically, so traces match with the memo cache on
	// or off.
	now := s.now()
	s.probe.Emit(probe.Event{Kind: probe.SchedPassBegin, At: now})
	res := s.pass(r, sp, warm)
	for _, c := range res.Established {
		s.probe.Emit(probe.Event{Kind: probe.ConnEstablished, At: now,
			Src: int32(c.Src), Dst: int32(c.Dst), Slot: int32(c.Slot)})
	}
	for _, c := range res.Released {
		s.probe.Emit(probe.Event{Kind: probe.ConnReleased, At: now,
			Src: int32(c.Src), Dst: int32(c.Dst), Slot: int32(c.Slot)})
	}
	s.probe.Emit(probe.Event{Kind: probe.SchedPassEnd, At: now,
		Aux: int64(len(res.Established)), ID: int64(len(res.Released))})
	return res
}

// pass is the probe-free body of Pass. A non-nil sp must wrap r (sp.Matrix()
// == r); it selects the sparse-path slot evaluation for the paper algorithm,
// and warm additionally selects the warm-started mask preparation (tier 2;
// the memo cache, tier 1, is consulted before either). The memo cache keys
// on the dense form every way, so hit/miss sequences — and therefore Stats —
// are identical across the entry points.
func (s *Scheduler) pass(r *bitmat.Matrix, sp *bitmat.Sparse, warm bool) PassResult {
	s.stats.Passes++
	dyn := s.DynamicSlotCount()
	if dyn == 0 {
		return PassResult{}
	}

	var key passKey
	if s.cache != nil {
		key = s.passKey(r)
		if e := s.cache.lookup(key, r); e != nil {
			s.stats.CacheHits++
			return s.replay(e)
		}
		s.stats.CacheMisses++
	}

	copies := s.p.SLCopies
	if copies > dyn {
		copies = dyn
	}
	s.estBuf = s.estBuf[:0]
	s.relBuf = s.relBuf[:0]
	s.slotsBuf = s.slotsBuf[:0]
	s.latchClrBuf = s.latchClrBuf[:0]
	if sp != nil && s.p.Algorithm == AlgPaper {
		if warm && s.warm != nil {
			s.warmPrepare(sp)
			s.warm.passActive = true
		} else {
			s.computePendingMask(sp)
		}
	}
	for c := 0; c < copies; c++ {
		// Advance the SL cursor to the next dynamic slot.
		var slot int
		for {
			slot = s.slCursor
			s.slCursor = (s.slCursor + 1) % s.p.K
			if !s.pinned[slot] {
				break
			}
		}
		s.dispatchSlot(r, sp, slot)
		s.slotsBuf = append(s.slotsBuf, slot)
	}
	if s.warm != nil {
		s.warm.passActive = false
	}
	if s.p.RotatePriority {
		s.rot = (s.rot + 1) % s.p.N
	}
	res := PassResult{Slots: s.slotsBuf, Established: s.estBuf, Released: s.relBuf}
	if s.cache != nil {
		if len(s.estBuf)+len(s.relBuf) > 0 {
			// The pass changed observable state: mint the ID that names the
			// post-state. A no-change pass keeps its ID (only the cursors
			// moved, and those are part of the cache key).
			s.nextID++
			s.stateID = s.nextID
		}
		s.cache.record(key, r, s)
	}
	return res
}

// DynamicSlotCount returns the number of slots available to reactive
// scheduling (K minus pinned slots).
func (s *Scheduler) DynamicSlotCount() int {
	n := 0
	for _, p := range s.pinned {
		if !p {
			n++
		}
	}
	return n
}

// invalidate retires the current state ID after an out-of-band state
// mutation (eviction, preload, flush, bandwidth change, direct
// ScheduleSlot). Cache entries keyed on older IDs can then never match
// again, so stale grants are structurally unable to replay.
func (s *Scheduler) invalidate() {
	if s.cache == nil {
		return
	}
	s.nextID++
	s.stateID = s.nextID
}

// --- extensions ---

// LoadConfig loads a predefined configuration into a slot (extension 5,
// compiled communication). The configuration must be a partial permutation.
// If pin is true the slot is excluded from dynamic scheduling until
// UnpinSlot or FlushAll.
func (s *Scheduler) LoadConfig(slot int, cfg *bitmat.Matrix, pin bool) error {
	s.checkSlot(slot)
	if cfg.Rows() != s.p.N || cfg.Cols() != s.p.N {
		return fmt.Errorf("core: configuration is %dx%d, want %dx%d", cfg.Rows(), cfg.Cols(), s.p.N, s.p.N)
	}
	if !cfg.IsPartialPermutation() {
		return fmt.Errorf("core: configuration for slot %d is not a partial permutation", slot)
	}
	s.clearSlot(slot)
	cfg.Ones(func(u, v int) bool {
		s.setConn(slot, u, v)
		return true
	})
	s.pinned[slot] = pin
	s.invalidate()
	return nil
}

// PinSlot marks a slot as preloaded so dynamic scheduling leaves it alone.
func (s *Scheduler) PinSlot(slot int, pin bool) {
	s.checkSlot(slot)
	if s.pinned[slot] != pin {
		s.pinned[slot] = pin
		s.invalidate()
	}
}

// Pinned reports whether a slot is pinned.
func (s *Scheduler) Pinned(slot int) bool {
	s.checkSlot(slot)
	return s.pinned[slot]
}

// AddBandwidth tries to insert the established connection src→dst into up to
// `extra` additional dynamic slots (extension 2: a connection present in m
// slots gets m/K of the link bandwidth). It returns the number of slots
// actually added, limited by port availability. The connection must already
// be established.
func (s *Scheduler) AddBandwidth(src, dst, extra int) int {
	s.checkPort(src)
	s.checkPort(dst)
	if extra < 0 {
		panic(fmt.Sprintf("core: negative extra slot count %d", extra))
	}
	if !s.Connected(src, dst) {
		return 0
	}
	added := 0
	for slot := 0; slot < s.p.K && added < extra; slot++ {
		if s.pinned[slot] || s.rowDst[slot][src] >= 0 || s.colSrc[slot][dst] >= 0 {
			continue
		}
		if s.p.CanEstablish != nil && !s.p.CanEstablish(s.configs[slot], src, dst) {
			continue
		}
		s.setConn(slot, src, dst)
		added++
	}
	if added > 0 {
		s.invalidate()
	}
	return added
}

// Evict releases a connection from every dynamic slot and clears its latch
// (the predictor's interface, paper §3.2). It returns the number of slot
// entries removed. Pinned slots are untouched: preloaded patterns are
// evicted by unloading their configuration, not per-connection.
func (s *Scheduler) Evict(src, dst int) int {
	s.checkPort(src)
	s.checkPort(dst)
	removed := 0
	for slot := 0; slot < s.p.K; slot++ {
		if s.pinned[slot] {
			continue
		}
		if s.rowDst[slot][src] == int32(dst) {
			s.clearConn(slot, src, dst)
			removed++
		}
	}
	latched := s.latch.Get(src, dst)
	if latched {
		s.latchClear(src, dst)
	}
	if removed > 0 {
		s.stats.Evictions += uint64(removed)
		s.stats.Released += uint64(removed)
	}
	if removed > 0 || latched {
		s.invalidate()
		if s.probe != nil {
			s.probe.Emit(probe.Event{Kind: probe.ConnEvicted, At: s.now(),
				Src: int32(src), Dst: int32(dst), Aux: int64(removed)})
		}
	}
	return removed
}

// EvictPort releases every dynamic-slot connection that uses port p as input
// or output and clears their latches — the scheduler's reaction to a link
// fault on p: cached configurations touching a failed port cannot be
// trusted, so they are invalidated and re-established on demand once the
// port recovers. Pinned slots are untouched (the preload controller owns
// them). It returns the released connections.
func (s *Scheduler) EvictPort(p int) []Change {
	s.checkPort(p)
	var out []Change
	for slot := 0; slot < s.p.K; slot++ {
		if s.pinned[slot] {
			continue
		}
		// Row side first, then column side, matching the original scan order.
		// A self-loop p→p clears colSrc[p] with the row entry, so it is not
		// reported twice.
		if v := s.rowDst[slot][p]; v >= 0 {
			s.clearConn(slot, p, int(v))
			out = append(out, Change{Src: p, Dst: int(v), Slot: slot})
		}
		if u := s.colSrc[slot][p]; u >= 0 {
			s.clearConn(slot, int(u), p)
			out = append(out, Change{Src: int(u), Dst: p, Slot: slot})
		}
	}
	for _, ch := range out {
		s.latchClear(ch.Src, ch.Dst)
	}
	if len(out) > 0 {
		s.stats.Evictions += uint64(len(out))
		s.stats.Released += uint64(len(out))
		s.invalidate()
		if s.probe != nil {
			now := s.now()
			for _, ch := range out {
				s.probe.Emit(probe.Event{Kind: probe.ConnEvicted, At: now,
					Src: int32(ch.Src), Dst: int32(ch.Dst), Slot: int32(ch.Slot), Aux: 1})
			}
		}
	}
	return out
}

// Flush clears every dynamic slot and all latches (extension 4: the
// compiler-inserted "flush all current connections" directive between
// program phases). Pinned preloaded slots survive.
func (s *Scheduler) Flush() {
	for slot := 0; slot < s.p.K; slot++ {
		if !s.pinned[slot] {
			s.clearSlot(slot)
		}
	}
	s.latch.Reset()
	s.warmInvalidate()
	s.stats.Flushes++
	s.invalidate()
	if s.probe != nil {
		s.probe.Emit(probe.Event{Kind: probe.Flush, At: s.now()})
	}
}

// FlushAll clears everything, including pinned slots, and unpins them.
func (s *Scheduler) FlushAll() {
	for slot := 0; slot < s.p.K; slot++ {
		s.clearSlot(slot)
		s.pinned[slot] = false
	}
	s.latch.Reset()
	s.warmInvalidate()
	s.stats.Flushes++
	s.invalidate()
	if s.probe != nil {
		s.probe.Emit(probe.Event{Kind: probe.Flush, At: s.now()})
	}
}

// Latched reports whether a dropped request for src→dst is being held.
func (s *Scheduler) Latched(src, dst int) bool {
	return s.latch.Get(src, dst)
}

// CheckInvariants verifies the structural invariants of the scheduler state:
// every configuration is a partial permutation, B* equals the OR of the
// configurations, the per-pair slot index (rowDst/colSrc, occupancy masks,
// counts) matches the matrices, and the sparse latch matches its dense
// backing. It returns an error describing the first violation. Tests and the
// simulation's self-checks call this; it is cheap (O(K·N²/64)).
func (s *Scheduler) CheckInvariants() error {
	for i, c := range s.configs {
		if !c.IsPartialPermutation() {
			return fmt.Errorf("core: B(%d) is not a partial permutation", i)
		}
	}
	if s.invBuf == nil {
		s.invBuf = bitmat.NewSquare(s.p.N)
	}
	want := s.invBuf
	want.Reset()
	for _, c := range s.configs {
		want.Or(c)
	}
	if !s.bstar.Equal(want) {
		return fmt.Errorf("core: B* out of sync with configurations")
	}
	for i, c := range s.configs {
		count := 0
		for u := 0; u < s.p.N; u++ {
			v := c.FirstInRow(u)
			if int(s.rowDst[i][u]) != v {
				return fmt.Errorf("core: slot %d rowDst[%d]=%d, matrix says %d", i, u, s.rowDst[i][u], v)
			}
			if maskTest(s.cfgRowMask[i], u) != (v >= 0) {
				return fmt.Errorf("core: slot %d row mask out of sync at input %d", i, u)
			}
			if v >= 0 {
				count++
				if int(s.colSrc[i][v]) != u {
					return fmt.Errorf("core: slot %d colSrc[%d]=%d, matrix says %d", i, v, s.colSrc[i][v], u)
				}
			}
		}
		for v := 0; v < s.p.N; v++ {
			has := c.ColAny(v)
			if maskTest(s.cfgColMask[i], v) != has {
				return fmt.Errorf("core: slot %d column mask out of sync at output %d", i, v)
			}
			if !has && s.colSrc[i][v] != -1 {
				return fmt.Errorf("core: slot %d colSrc[%d]=%d, column is empty", i, v, s.colSrc[i][v])
			}
		}
		if s.cfgCount[i] != count {
			return fmt.Errorf("core: slot %d count %d, matrix holds %d", i, s.cfgCount[i], count)
		}
	}
	if err := s.latch.CheckParity(); err != nil {
		return fmt.Errorf("core: latch: %w", err)
	}
	return s.checkWarmInvariants()
}
