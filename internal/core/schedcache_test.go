package core

import (
	"math/rand"
	"testing"

	"pmsnet/internal/bitmat"
)

// twin drives a memoized and an unmemoized scheduler through the same
// operation sequence and fails the test at the first behavioural
// divergence — the cache must be observationally invisible.
type twin struct {
	t      *testing.T
	cached *Scheduler
	plain  *Scheduler
}

func newTwin(t *testing.T, p Params) *twin {
	t.Helper()
	pc := p
	pc.Memoize = true
	pp := p
	pp.Memoize = false
	return &twin{t: t, cached: MustScheduler(pc), plain: MustScheduler(pp)}
}

func sameChanges(a, b []Change) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pass runs one Pass on both schedulers and demands identical results and
// identical post-state.
func (tw *twin) pass(r *bitmat.Matrix) {
	tw.t.Helper()
	rc, rp := tw.cached.Pass(r), tw.plain.Pass(r)
	if !sameInts(rc.Slots, rp.Slots) {
		tw.t.Fatalf("slot divergence: cached %v, plain %v", rc.Slots, rp.Slots)
	}
	if !sameChanges(rc.Established, rp.Established) {
		tw.t.Fatalf("establish divergence: cached %v, plain %v", rc.Established, rp.Established)
	}
	if !sameChanges(rc.Released, rp.Released) {
		tw.t.Fatalf("release divergence: cached %v, plain %v", rc.Released, rp.Released)
	}
	tw.checkState()
}

func (tw *twin) checkState() {
	tw.t.Helper()
	k := tw.cached.Params().K
	for slot := 0; slot < k; slot++ {
		if !tw.cached.Config(slot).Equal(tw.plain.Config(slot)) {
			tw.t.Fatalf("B(%d) divergence:\ncached:\n%v\nplain:\n%v",
				slot, tw.cached.Config(slot), tw.plain.Config(slot))
		}
		if tw.cached.Pinned(slot) != tw.plain.Pinned(slot) {
			tw.t.Fatalf("pinned(%d) divergence", slot)
		}
	}
	if !tw.cached.BStar().Equal(tw.plain.BStar()) {
		tw.t.Fatal("B* divergence")
	}
	n := tw.cached.Params().N
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if tw.cached.Latched(u, v) != tw.plain.Latched(u, v) {
				tw.t.Fatalf("latch divergence at (%d,%d)", u, v)
			}
		}
	}
	sc, sp := tw.cached.Stats(), tw.plain.Stats()
	sc.CacheHits, sc.CacheMisses = 0, 0
	if sc != sp {
		tw.t.Fatalf("stats divergence: cached %+v, plain %+v", sc, sp)
	}
	if err := tw.cached.CheckInvariants(); err != nil {
		tw.t.Fatalf("cached invariants: %v", err)
	}
	if err := tw.plain.CheckInvariants(); err != nil {
		tw.t.Fatalf("plain invariants: %v", err)
	}
}

func TestCacheHitsReplayIdentically(t *testing.T) {
	// K=1, no rotation: a steady request pattern reaches a fixed point
	// after one pass, so from the third pass on every pass is a cache hit.
	tw := newTwin(t, Params{N: 8, K: 1})
	r := req(8, [2]int{0, 1}, [2]int{2, 3}, [2]int{4, 5})
	for i := 0; i < 10; i++ {
		tw.pass(r)
	}
	st := tw.cached.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("expected cache hits on a steady pattern, stats %+v", st)
	}
	if st.CacheHits+st.CacheMisses != st.Passes {
		t.Fatalf("hits+misses = %d, passes = %d", st.CacheHits+st.CacheMisses, st.Passes)
	}
	if tw.plain.Stats().CacheHits != 0 || tw.plain.Stats().CacheMisses != 0 {
		t.Fatal("unmemoized scheduler reported cache activity")
	}
}

func TestCacheRotationCyclesStillHit(t *testing.T) {
	// With rotation the key includes rot, so a steady pattern only repeats
	// after the rot/slCursor cycle closes — but then it must hit.
	n, k := 6, 2
	tw := newTwin(t, Params{N: n, K: k, RotatePriority: true, SkipEmptySlots: true})
	r := req(n, [2]int{0, 1}, [2]int{1, 0}, [2]int{3, 4})
	cycle := n * k // lcm(n, k) divides n*k
	for i := 0; i < 3*cycle; i++ {
		tw.pass(r)
	}
	if tw.cached.Stats().CacheHits == 0 {
		t.Fatalf("no hits after %d steady passes, stats %+v", 3*cycle, tw.cached.Stats())
	}
}

func TestEvictInvalidatesCachedPasses(t *testing.T) {
	tw := newTwin(t, Params{N: 8, K: 2, LatchRequests: true})
	r := req(8, [2]int{0, 1}, [2]int{2, 3})
	for i := 0; i < 8; i++ {
		tw.pass(r)
	}
	if tw.cached.Stats().CacheHits == 0 {
		t.Fatal("cache never warmed up")
	}
	// Evict one connection out-of-band (the predictor's move) and keep
	// passing a request matrix that no longer asks for it: a stale cached
	// replay would resurrect the old grant set.
	if got := tw.cached.Evict(0, 1); got != tw.plain.Evict(0, 1) {
		t.Fatal("evict count divergence")
	}
	tw.checkState()
	r2 := req(8, [2]int{2, 3})
	for i := 0; i < 8; i++ {
		tw.pass(r2)
	}
	if tw.cached.Connected(0, 1) {
		t.Fatal("evicted connection came back without a request")
	}
}

// TestEvictPortPinnedSlotsAndCacheEpoch covers the EvictPort/AddBandwidth
// interaction with pinned slots and the cache epoch: a pinned preloaded
// slot survives both operations, dynamic slots are cleaned, and every
// cached pass recorded before the mutation is invalidated.
func TestEvictPortPinnedSlotsAndCacheEpoch(t *testing.T) {
	n, k := 8, 3
	tw := newTwin(t, Params{N: n, K: k, LatchRequests: true})

	// Slot 0 is a pinned preload containing 1→2; slots 1, 2 stay dynamic.
	pre := bitmat.NewSquare(n)
	pre.Set(1, 2)
	for _, s := range []*Scheduler{tw.cached, tw.plain} {
		if err := s.LoadConfig(0, pre, true); err != nil {
			t.Fatal(err)
		}
	}
	tw.checkState()

	// Establish 1→2 dynamically too (AddBandwidth needs an established
	// connection) plus 4→5, then warm the cache.
	r := req(n, [2]int{1, 2}, [2]int{4, 5})
	for i := 0; i < 3*k; i++ {
		tw.pass(r)
	}
	warmHits := tw.cached.Stats().CacheHits
	if warmHits == 0 {
		t.Fatal("cache never warmed up with a pinned slot present")
	}

	// AddBandwidth must mutate only dynamic slots and invalidate the epoch.
	if ac, ap := tw.cached.AddBandwidth(4, 5, k), tw.plain.AddBandwidth(4, 5, k); ac != ap {
		t.Fatalf("AddBandwidth divergence: cached %d, plain %d", ac, ap)
	}
	tw.checkState()
	for i := 0; i < 2; i++ {
		tw.pass(r)
	}

	// EvictPort(2) hits both the dynamic copies using port 2; the pinned
	// preload keeps its 1→2 entry.
	ec, ep := tw.cached.EvictPort(2), tw.plain.EvictPort(2)
	if !sameChanges(ec, ep) {
		t.Fatalf("EvictPort divergence: cached %v, plain %v", ec, ep)
	}
	for _, c := range ec {
		if c.Slot == 0 {
			t.Fatalf("EvictPort touched pinned slot: %+v", c)
		}
	}
	if !tw.cached.Config(0).Get(1, 2) {
		t.Fatal("pinned preload lost its connection")
	}
	tw.checkState()

	// Passes after the mutation must not replay pre-mutation transitions:
	// behaviour has to keep matching the unmemoized twin exactly.
	for i := 0; i < 3*k; i++ {
		tw.pass(r)
	}
}

func TestCacheStopsRecordingAtCapacity(t *testing.T) {
	s := MustScheduler(Params{N: 16, K: 2, Memoize: true})
	rng := rand.New(rand.NewSource(5))
	r := bitmat.NewSquare(16)
	for i := 0; i < 2*maxCacheEntries; i++ {
		// Ever-changing requests: nearly every pass is a distinct key.
		r.Toggle(rng.Intn(16), rng.Intn(16))
		s.Pass(r)
	}
	if s.CacheSize() > maxCacheEntries {
		t.Fatalf("cache grew past its cap: %d > %d", s.CacheSize(), maxCacheEntries)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCachedPassIdentity drives random operation sequences — passes,
// evictions, flushes, preloads, bandwidth changes — through the twin pair
// and demands bit-identity throughout.
func TestQuickCachedPassIdentity(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		k := 1 + rng.Intn(3)
		p := Params{
			N:              n,
			K:              k,
			RotatePriority: rng.Intn(2) == 0,
			SkipEmptySlots: rng.Intn(2) == 0,
			SLCopies:       1 + rng.Intn(k),
			LatchRequests:  rng.Intn(2) == 0,
		}
		tw := newTwin(t, p)
		r := bitmat.NewSquare(n)
		for step := 0; step < 200; step++ {
			switch op := rng.Intn(10); {
			case op < 6: // mutate the request matrix a little and pass
				for m := rng.Intn(3); m >= 0; m-- {
					u, v := rng.Intn(n), rng.Intn(n)
					if u != v {
						r.Toggle(u, v)
					}
				}
				tw.pass(r)
			case op < 7: // repeat the same request (the cache's bread and butter)
				tw.pass(r)
			case op < 8:
				u, v := rng.Intn(n), rng.Intn(n)
				if tw.cached.Evict(u, v) != tw.plain.Evict(u, v) {
					t.Fatalf("seed %d: evict divergence", seed)
				}
				tw.checkState()
			case op < 9:
				u, v, extra := rng.Intn(n), rng.Intn(n), 1+rng.Intn(k)
				if tw.cached.AddBandwidth(u, v, extra) != tw.plain.AddBandwidth(u, v, extra) {
					t.Fatalf("seed %d: AddBandwidth divergence", seed)
				}
				tw.checkState()
			default:
				tw.cached.Flush()
				tw.plain.Flush()
				tw.checkState()
			}
		}
	}
}

// FuzzSchedCache feeds arbitrary operation tapes to the twin pair: cached
// and uncached Pass results must stay identical across request-matrix
// mutations interleaved with evictions and flushes.
func FuzzSchedCache(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x10, 0x93, 0x07})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00})
	f.Add([]byte("steady state then evict"))
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) == 0 {
			return
		}
		n := 2 + int(tape[0]%8)
		k := 1 + int(tape[0]>>4%3)
		p := Params{
			N:              n,
			K:              k,
			RotatePriority: tape[0]&1 != 0,
			SkipEmptySlots: tape[0]&2 != 0,
			LatchRequests:  tape[0]&4 != 0,
		}
		tw := newTwin(t, p)
		r := bitmat.NewSquare(n)
		next := func(i int) byte { return tape[i%len(tape)] }
		for i := 1; i < len(tape); i++ {
			b := tape[i]
			u, v := int(next(i+1))%n, int(next(i+2))%n
			switch b % 5 {
			case 0, 1:
				if u != v {
					r.Toggle(u, v)
				}
				tw.pass(r)
			case 2:
				tw.pass(r)
			case 3:
				if tw.cached.Evict(u, v) != tw.plain.Evict(u, v) {
					t.Fatal("evict divergence")
				}
				tw.checkState()
			default:
				tw.cached.Flush()
				tw.plain.Flush()
				tw.checkState()
			}
		}
	})
}
