package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/runner"
)

func newTest(n, k int) *Scheduler {
	return MustScheduler(Params{N: n, K: k, SkipEmptySlots: true})
}

func req(n int, conns ...[2]int) *bitmat.Matrix {
	r := bitmat.NewSquare(n)
	for _, c := range conns {
		r.Set(c[0], c[1])
	}
	return r
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{N: 0, K: 4},
		{N: 4, K: 0},
		{N: 4, K: 2, SLCopies: 3},
		{N: 4, K: 2, SLCopies: -1},
	}
	for i, p := range bad {
		if err := p.withDefaults().Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
	if err := (Params{N: 4, K: 2}).withDefaults().Validate(); err != nil {
		t.Fatalf("default params should validate: %v", err)
	}
}

func TestNewSchedulerRejectsBadParams(t *testing.T) {
	if _, err := NewScheduler(Params{N: -1, K: 1}); err == nil {
		t.Fatal("expected an error for N=-1")
	}
	if _, err := NewScheduler(Params{N: 4, K: 0}); err == nil {
		t.Fatal("expected an error for K=0")
	}
	if s, err := NewScheduler(Params{N: 4, K: 2}); err != nil || s == nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestMustSchedulerPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustScheduler(Params{N: -1, K: 1})
}

// TestPreScheduleTable1 reproduces the paper's Table 1 exhaustively: the
// four input cases of the pre-scheduling logic and the L value each produces.
func TestPreScheduleTable1(t *testing.T) {
	const n = 4
	cases := []struct {
		name        string
		request     bool // R(u,v)
		inOtherSlot bool // makes B*(u,v)=1 without B(s)(u,v)
		inThisSlot  bool // B(s)(u,v)
		wantL       bool
	}{
		{"not requested, not realized in s", false, false, false, false},
		{"not requested, realized in s (release)", false, false, true, true},
		{"not requested, realized elsewhere only", false, true, false, false},
		{"requested, realized in this slot", true, false, true, false},
		{"requested, realized in another slot", true, true, false, false},
		{"requested, realized nowhere (establish)", true, false, false, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := newTest(n, 2)
			u, v := 1, 2
			if c.inThisSlot {
				cfg := bitmat.NewSquare(n)
				cfg.Set(u, v)
				if err := s.LoadConfig(0, cfg, false); err != nil {
					t.Fatal(err)
				}
			}
			if c.inOtherSlot {
				cfg := bitmat.NewSquare(n)
				cfg.Set(u, v)
				if err := s.LoadConfig(1, cfg, false); err != nil {
					t.Fatal(err)
				}
			}
			r := bitmat.NewSquare(n)
			if c.request {
				r.Set(u, v)
			}
			l := s.PreSchedule(r, 0)
			if got := l.Get(u, v); got != c.wantL {
				t.Fatalf("L(%d,%d) = %v, want %v", u, v, got, c.wantL)
			}
		})
	}
}

// TestSLModuleTable2 exercises each row of the paper's Table 2 through
// ScheduleSlot: the action taken for every (L, A, D) combination.
func TestSLModuleTable2(t *testing.T) {
	const n = 4
	u, v := 1, 2

	t.Run("L=0 no change", func(t *testing.T) {
		s := newTest(n, 1)
		est, rel := s.ScheduleSlot(bitmat.NewSquare(n), 0)
		if len(est) != 0 || len(rel) != 0 {
			t.Fatal("empty request matrix must change nothing")
		}
	})

	t.Run("L=1 A=1 D=1 release", func(t *testing.T) {
		s := newTest(n, 1)
		cfg := bitmat.NewSquare(n)
		cfg.Set(u, v)
		if err := s.LoadConfig(0, cfg, false); err != nil {
			t.Fatal(err)
		}
		// No request for (u,v): release it.
		est, rel := s.ScheduleSlot(bitmat.NewSquare(n), 0)
		if len(est) != 0 || len(rel) != 1 || rel[0] != (Change{u, v, 0}) {
			t.Fatalf("est=%v rel=%v, want single release of %d->%d", est, rel, u, v)
		}
		if s.Connected(u, v) {
			t.Fatal("connection should be gone")
		}
	})

	t.Run("L=1 A=1 D=0 output busy, no change", func(t *testing.T) {
		s := newTest(n, 1)
		cfg := bitmat.NewSquare(n)
		cfg.Set(0, v) // output v held by input 0
		if err := s.LoadConfig(0, cfg, false); err != nil {
			t.Fatal(err)
		}
		// Request (u,v) and keep (0,v) requested so it is not released.
		est, _ := s.ScheduleSlot(req(n, [2]int{0, v}, [2]int{u, v}), 0)
		if len(est) != 0 {
			t.Fatalf("est=%v, want none: output %d is busy", est, v)
		}
	})

	t.Run("L=1 A=0 D=1 input busy, no change", func(t *testing.T) {
		s := newTest(n, 1)
		cfg := bitmat.NewSquare(n)
		cfg.Set(u, 3) // input u held toward output 3
		if err := s.LoadConfig(0, cfg, false); err != nil {
			t.Fatal(err)
		}
		est, _ := s.ScheduleSlot(req(n, [2]int{u, 3}, [2]int{u, v}), 0)
		if len(est) != 0 {
			t.Fatalf("est=%v, want none: input %d is busy", est, u)
		}
	})

	t.Run("L=1 A=0 D=0 establish", func(t *testing.T) {
		s := newTest(n, 1)
		est, rel := s.ScheduleSlot(req(n, [2]int{u, v}), 0)
		if len(rel) != 0 || len(est) != 1 || est[0] != (Change{u, v, 0}) {
			t.Fatalf("est=%v rel=%v, want single establish of %d->%d", est, rel, u, v)
		}
		if !s.Connected(u, v) {
			t.Fatal("connection should exist")
		}
	})

	t.Run("both ports busy establish-need, no phantom release", func(t *testing.T) {
		// The hazardous corner: (u,v) requested, not realized anywhere, but
		// output v and input u are both held by other connections. The SL
		// cell must NOT toggle B(s)(u,v) (the cell's own register bit
		// disambiguates release from establish).
		s := newTest(n, 1)
		cfg := bitmat.NewSquare(n)
		cfg.Set(0, v)
		cfg.Set(u, 3)
		if err := s.LoadConfig(0, cfg, false); err != nil {
			t.Fatal(err)
		}
		est, rel := s.ScheduleSlot(req(n, [2]int{0, v}, [2]int{u, 3}, [2]int{u, v}), 0)
		if len(est) != 0 || len(rel) != 0 {
			t.Fatalf("est=%v rel=%v, want no change", est, rel)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestReleaseFreesPortsForLaterCellInSamePass(t *testing.T) {
	// Table 2's availability propagation: a release earlier in the scan
	// order frees ports that a later establish in the same pass can use.
	const n = 4
	s := newTest(n, 1)
	cfg := bitmat.NewSquare(n)
	cfg.Set(0, 2) // will be released (no request)
	if err := s.LoadConfig(0, cfg, false); err != nil {
		t.Fatal(err)
	}
	// Request (1,2): output 2 is busy until (0,2) is released, which happens
	// earlier in the row scan (row 0 before row 1).
	est, rel := s.ScheduleSlot(req(n, [2]int{1, 2}), 0)
	if len(rel) != 1 || rel[0] != (Change{0, 2, 0}) {
		t.Fatalf("rel=%v, want release of 0->2", rel)
	}
	if len(est) != 1 || est[0] != (Change{1, 2, 0}) {
		t.Fatalf("est=%v, want establish of 1->2 in the same pass", est)
	}
}

func TestPriorityWithoutRotation(t *testing.T) {
	// Two requests for the same output: the lower-numbered input wins
	// (paper: ports are available to R(u,v) before R(a,b) if u<a or v<b).
	const n = 4
	s := MustScheduler(Params{N: n, K: 1})
	est, _ := s.ScheduleSlot(req(n, [2]int{0, 3}, [2]int{2, 3}), 0)
	if len(est) != 1 || est[0].Src != 0 {
		t.Fatalf("est=%v, want input 0 to win output 3", est)
	}
}

func TestRotatingPriorityIsFair(t *testing.T) {
	// With rotation, inputs 0 and 2 should alternate winning output 3 when
	// the connection is torn down between passes.
	const n = 4
	s := MustScheduler(Params{N: n, K: 1, RotatePriority: true})
	wins := map[int]int{}
	for pass := 0; pass < 2*n; pass++ {
		r := req(n, [2]int{0, 3}, [2]int{2, 3})
		res := s.Pass(r)
		for _, e := range res.Established {
			wins[e.Src]++
		}
		// Tear down for the next round.
		s.Pass(bitmat.NewSquare(n))
	}
	if wins[0] == 0 || wins[2] == 0 {
		t.Fatalf("wins = %v: rotation should let both inputs win sometimes", wins)
	}
}

func TestPassCyclesSlotsAndGrantRow(t *testing.T) {
	const n = 4
	s := newTest(n, 2)
	// Two requests from input 0: only one can live per slot.
	r := req(n, [2]int{0, 1}, [2]int{0, 2})
	res1 := s.Pass(r)
	if len(res1.Established) != 1 {
		t.Fatalf("pass 1 established %v, want 1 connection", res1.Established)
	}
	res2 := s.Pass(r)
	if len(res2.Established) != 1 {
		t.Fatalf("pass 2 established %v, want the second connection", res2.Established)
	}
	if !s.Connected(0, 1) || !s.Connected(0, 2) {
		t.Fatal("both connections should be established across slots")
	}
	if s.Connections() != 2 {
		t.Fatalf("Connections = %d, want 2", s.Connections())
	}
	// Grants: each slot grants input 0 a different output.
	g0, g1 := s.GrantRow(0, 0), s.GrantRow(1, 0)
	if g0 == g1 || g0 < 0 || g1 < 0 {
		t.Fatalf("grants = %d,%d: want two distinct outputs", g0, g1)
	}
	if s.GrantRow(0, 3) != -1 {
		t.Fatal("input 3 should have no grant")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTDMCounterSkipsEmptySlots(t *testing.T) {
	const n = 4
	s := MustScheduler(Params{N: n, K: 4, SkipEmptySlots: true})
	cfg := bitmat.NewSquare(n)
	cfg.Set(1, 2)
	if err := s.LoadConfig(2, cfg, false); err != nil {
		t.Fatal(err)
	}
	// Only slot 2 is non-empty: the TDM counter must return it every time.
	for i := 0; i < 5; i++ {
		slot, got, ok := s.NextFabricSlot()
		if !ok || slot != 2 {
			t.Fatalf("iteration %d: slot=%d ok=%v, want slot 2", i, slot, ok)
		}
		if !got.Get(1, 2) {
			t.Fatal("returned config should contain the connection")
		}
	}
	if got := s.ActiveSlots(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("ActiveSlots = %v, want [2]", got)
	}
}

func TestTDMCounterAllEmpty(t *testing.T) {
	s := newTest(4, 3)
	if _, _, ok := s.NextFabricSlot(); ok {
		t.Fatal("all-empty scheduler should report no fabric slot")
	}
}

func TestTDMCounterWithoutSkipping(t *testing.T) {
	const n = 4
	s := MustScheduler(Params{N: n, K: 3, SkipEmptySlots: false})
	cfg := bitmat.NewSquare(n)
	cfg.Set(0, 1)
	if err := s.LoadConfig(1, cfg, false); err != nil {
		t.Fatal(err)
	}
	var slots []int
	for i := 0; i < 6; i++ {
		slot, _, ok := s.NextFabricSlot()
		if !ok {
			t.Fatal("non-skipping counter should always return a slot")
		}
		slots = append(slots, slot)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("slots = %v, want %v", slots, want)
		}
	}
}

func TestLatchedRequestsSurviveDrop(t *testing.T) {
	const n = 4
	s := MustScheduler(Params{N: n, K: 2, LatchRequests: true})
	s.Pass(req(n, [2]int{0, 1}))
	if !s.Connected(0, 1) || !s.Latched(0, 1) {
		t.Fatal("connection should be established and latched")
	}
	// Drop the request: with latching, both passes leave it in place.
	s.Pass(bitmat.NewSquare(n))
	s.Pass(bitmat.NewSquare(n))
	if !s.Connected(0, 1) {
		t.Fatal("latched connection must survive request drop")
	}
	// Evict: gone, latch cleared.
	if got := s.Evict(0, 1); got != 1 {
		t.Fatalf("Evict removed %d entries, want 1", got)
	}
	if s.Connected(0, 1) || s.Latched(0, 1) {
		t.Fatal("evicted connection should be fully gone")
	}
	if s.Stats().Evictions != 1 {
		t.Fatalf("eviction stat = %d, want 1", s.Stats().Evictions)
	}
}

func TestWithoutLatchingDropReleases(t *testing.T) {
	const n = 4
	s := MustScheduler(Params{N: n, K: 1})
	s.Pass(req(n, [2]int{0, 1}))
	if !s.Connected(0, 1) {
		t.Fatal("should be established")
	}
	s.Pass(bitmat.NewSquare(n))
	if s.Connected(0, 1) {
		t.Fatal("unlatched connection must be released when the request drops")
	}
}

func TestFlushSparesPinnedSlots(t *testing.T) {
	const n = 4
	s := MustScheduler(Params{N: n, K: 3, LatchRequests: true})
	pre := bitmat.NewSquare(n)
	pre.Set(3, 0)
	if err := s.LoadConfig(0, pre, true); err != nil {
		t.Fatal(err)
	}
	s.Pass(req(n, [2]int{1, 2}))
	if s.Connections() != 2 {
		t.Fatalf("Connections = %d, want 2", s.Connections())
	}
	s.Flush()
	if !s.Connected(3, 0) {
		t.Fatal("pinned preloaded connection must survive Flush")
	}
	if s.Connected(1, 2) || s.Latched(1, 2) {
		t.Fatal("dynamic connection must be flushed")
	}
	s.FlushAll()
	if s.Connections() != 0 || s.Pinned(0) {
		t.Fatal("FlushAll must clear and unpin everything")
	}
}

func TestPassSkipsPinnedSlots(t *testing.T) {
	const n = 4
	s := MustScheduler(Params{N: n, K: 2})
	pre := bitmat.NewSquare(n)
	pre.Set(0, 1)
	if err := s.LoadConfig(0, pre, true); err != nil {
		t.Fatal(err)
	}
	if s.DynamicSlotCount() != 1 {
		t.Fatalf("DynamicSlotCount = %d, want 1", s.DynamicSlotCount())
	}
	// Request conflicts with the preloaded connection's ports: it can only
	// go to slot 1; slot 0 must never be modified.
	res := s.Pass(req(n, [2]int{0, 2}))
	if len(res.Slots) != 1 || res.Slots[0] != 1 {
		t.Fatalf("pass scheduled into slots %v, want [1]", res.Slots)
	}
	if !s.Config(0).Equal(pre) {
		t.Fatal("pinned slot contents changed")
	}
	// No request for (0,1): without latching a dynamic slot would release
	// it, but the pinned slot is exempt from scheduling entirely.
	s.Pass(bitmat.NewSquare(n))
	if !s.Connected(0, 1) {
		t.Fatal("pinned connection must not be released by dynamic passes")
	}
}

func TestScheduleSlotOnPinnedSlotPanics(t *testing.T) {
	s := MustScheduler(Params{N: 4, K: 1})
	s.PinSlot(0, true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.ScheduleSlot(bitmat.NewSquare(4), 0)
}

func TestLoadConfigValidation(t *testing.T) {
	s := newTest(4, 2)
	bad := bitmat.NewSquare(4)
	bad.Set(0, 1)
	bad.Set(2, 1)
	if err := s.LoadConfig(0, bad, false); err == nil {
		t.Fatal("expected error for conflicting configuration")
	}
	if err := s.LoadConfig(0, bitmat.NewSquare(5), false); err == nil {
		t.Fatal("expected error for wrong shape")
	}
}

func TestAddBandwidth(t *testing.T) {
	const n = 4
	s := MustScheduler(Params{N: n, K: 4})
	s.Pass(req(n, [2]int{0, 1}))
	if got := s.AddBandwidth(0, 1, 2); got != 2 {
		t.Fatalf("AddBandwidth = %d, want 2", got)
	}
	if got := len(s.SlotsOf(0, 1)); got != 3 {
		t.Fatalf("connection lives in %d slots, want 3", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Unknown connection: nothing to amplify.
	if got := s.AddBandwidth(2, 3, 1); got != 0 {
		t.Fatalf("AddBandwidth for unestablished connection = %d, want 0", got)
	}
	// Occupied ports limit extra slots.
	s2 := MustScheduler(Params{N: n, K: 2})
	s2.Pass(req(n, [2]int{0, 1}, [2]int{2, 3}))
	s2.Pass(req(n, [2]int{0, 3})) // second slot uses 0 and 3
	if got := s2.AddBandwidth(0, 1, 4); got != 0 {
		t.Fatalf("AddBandwidth = %d, want 0: both slots have port conflicts", got)
	}
}

func TestMultiSlotConnectionReleasedFromAllSlots(t *testing.T) {
	const n = 4
	s := MustScheduler(Params{N: n, K: 3})
	s.Pass(req(n, [2]int{0, 1}))
	s.AddBandwidth(0, 1, 2)
	if len(s.SlotsOf(0, 1)) != 3 {
		t.Fatal("setup failed")
	}
	// Drop the request; each pass releases the copy in the slot it scans.
	for i := 0; i < 3; i++ {
		s.Pass(bitmat.NewSquare(n))
	}
	if s.Connected(0, 1) {
		t.Fatalf("connection still in slots %v after three passes", s.SlotsOf(0, 1))
	}
}

func TestSLCopiesSchedulesMultipleSlotsPerPass(t *testing.T) {
	const n = 4
	s := MustScheduler(Params{N: n, K: 2, SLCopies: 2})
	r := req(n, [2]int{0, 1}, [2]int{0, 2})
	res := s.Pass(r)
	if len(res.Slots) != 2 {
		t.Fatalf("pass touched %v, want both slots", res.Slots)
	}
	if len(res.Established) != 2 {
		t.Fatalf("established %v, want both connections in one pass", res.Established)
	}
}

func TestStatsCounting(t *testing.T) {
	const n = 4
	s := MustScheduler(Params{N: n, K: 1})
	s.Pass(req(n, [2]int{0, 1}))
	s.Pass(bitmat.NewSquare(n))
	s.Flush()
	st := s.Stats()
	if st.Passes != 2 || st.Established != 1 || st.Released != 1 || st.Flushes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := newTest(4, 2)
	for i, fn := range []func(){
		func() { s.Config(2) },
		func() { s.Config(-1) },
		func() { s.GrantRow(0, 4) },
		func() { s.GrantRow(3, 0) },
		func() { s.Evict(4, 0) },
		func() { s.AddBandwidth(0, 1, -1) },
		func() { s.PreSchedule(bitmat.NewSquare(5), 0) },
		func() { s.PinSlot(7, true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestQuickInvariantsUnderRandomRequests drives the scheduler with random
// request matrices and checks after every pass that all configurations stay
// partial permutations, B* stays in sync, and no connection exists that was
// never requested.
func TestQuickInvariantsUnderRandomRequests(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		k := 1 + rng.Intn(4)
		s := MustScheduler(Params{
			N:              n,
			K:              k,
			RotatePriority: rng.Intn(2) == 0,
			SkipEmptySlots: rng.Intn(2) == 0,
		})
		everRequested := bitmat.NewSquare(n)
		for pass := 0; pass < 30; pass++ {
			r := bitmat.NewSquare(n)
			for e := 0; e < n; e++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					r.Set(u, v)
					everRequested.Set(u, v)
				}
			}
			s.Pass(r)
			if err := s.CheckInvariants(); err != nil {
				return false
			}
			if !s.BStar().ContainedIn(everRequested) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSteadyRequestsEventuallyServed verifies liveness: with a fixed
// realizable request set (a partial permutation) and K >= 1, every request
// is established within K passes and then never churns.
func TestQuickSteadyRequestsEventuallyServed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		k := 1 + rng.Intn(4)
		s := MustScheduler(Params{N: n, K: k, SkipEmptySlots: true})
		perm := rng.Perm(n)
		r := bitmat.NewSquare(n)
		for u, v := range perm {
			if u != v {
				r.Set(u, v)
			}
		}
		for pass := 0; pass < k; pass++ {
			s.Pass(r)
		}
		if !r.ContainedIn(s.BStar()) {
			return false
		}
		// Stability: further passes change nothing.
		res := s.Pass(r)
		return len(res.Established) == 0 && len(res.Released) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWorkingSetFullyCachedWithGreedyBound: the scheduler packs
// connections into slots first-fit, which (like first-fit edge coloring)
// may need up to 2d-1 slots for a degree-d working set — an established
// connection never migrates between slots. With K = 2d-1 every pending
// request always finds a free slot: the source's other d-1 edges and the
// destination's other d-1 edges together block at most 2d-2 slots. So after
// one full SL sweep over the K slots the set must be fully cached.
func TestQuickWorkingSetFullyCachedWithGreedyBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		d := 1 + rng.Intn(3)
		k := 2*d - 1
		// Build a request set with out/in degree <= d.
		r := bitmat.NewSquare(n)
		out := make([]int, n)
		in := make([]int, n)
		for tries := 0; tries < n*d*3; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && out[u] < d && in[v] < d && !r.Get(u, v) {
				r.Set(u, v)
				out[u]++
				in[v]++
			}
		}
		s := MustScheduler(Params{N: n, K: k})
		for pass := 0; pass < k; pass++ {
			s.Pass(r)
		}
		return r.ContainedIn(s.BStar())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPass128Dense(b *testing.B) {
	const n = 128
	s := MustScheduler(Params{N: n, K: 4, RotatePriority: true})
	rng := rand.New(rand.NewSource(9))
	r := bitmat.NewSquare(n)
	for i := 0; i < n; i++ {
		v := rng.Intn(n)
		if v != i {
			r.Set(i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Pass(r)
	}
}

// --- large-N scaling benches (dense vs sparse vs sharded passes) ---

// benchSparseRequests builds the scale-out benchmark pattern: one random
// destination per source, so the request matrix carries N nonzeros out of
// N² cells (occupancy 1/N — 0.1% at N=1024, well under the 5% gate) — the
// Solstice-style skew regime large multiprocessor request matrices live in.
func benchSparseRequests(n int) (*bitmat.Matrix, *bitmat.Sparse) {
	rng := rand.New(rand.NewSource(9))
	r := bitmat.NewSquare(n)
	sp := bitmat.NewSparse(n, n)
	for i := 0; i < n; i++ {
		v := rng.Intn(n)
		if v != i {
			r.Set(i, v)
			sp.Set(i, v)
		}
	}
	return r, sp
}

// benchPassScale measures the steady-state pass over a sparse request set:
// after a warm-up sweep establishes the working set, each iteration is one
// full scheduling pass whose cost is pure scanning — the axis the sparse
// representation attacks. Memoization is off so the scheduling array runs
// on every iteration in both variants.
func benchPassScale(b *testing.B, n int, sparse bool, shards int) {
	b.Helper()
	p := Params{N: n, K: 4, RotatePriority: true, SkipEmptySlots: true}
	if shards > 1 {
		bounds := make([]int, shards+1)
		for i := 1; i <= shards; i++ {
			bounds[i] = i * n / shards
		}
		p.ShardBounds = bounds
		pool := runner.NewPool(shards)
		defer pool.Close()
		p.ShardRun = pool.Run
	}
	s := MustScheduler(p)
	r, sp := benchSparseRequests(n)
	for pass := 0; pass < p.K; pass++ {
		if sparse {
			s.PassSparse(sp)
		} else {
			s.Pass(r)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sparse {
			s.PassSparse(sp)
		} else {
			s.Pass(r)
		}
	}
}

func BenchmarkPass512Dense(b *testing.B)     { benchPassScale(b, 512, false, 0) }
func BenchmarkPass512Sparse(b *testing.B)    { benchPassScale(b, 512, true, 0) }
func BenchmarkPass1024Dense(b *testing.B)    { benchPassScale(b, 1024, false, 0) }
func BenchmarkPass1024Sparse(b *testing.B)   { benchPassScale(b, 1024, true, 0) }
func BenchmarkPass2048Dense(b *testing.B)    { benchPassScale(b, 2048, false, 0) }
func BenchmarkPass2048Sparse(b *testing.B)   { benchPassScale(b, 2048, true, 0) }
func BenchmarkPass1024Sharded8(b *testing.B) { benchPassScale(b, 1024, true, 8) }
func BenchmarkPass2048Sharded8(b *testing.B) { benchPassScale(b, 2048, true, 8) }

// BenchmarkSlotsOf1024 measures the per-pair slot index (satellite of the
// scale-out issue): SlotsOf used to rescan all K configuration matrices per
// call; the incrementally-maintained index answers from rowDst directly.
func BenchmarkSlotsOf1024(b *testing.B) {
	const n = 1024
	s := MustScheduler(Params{N: n, K: 8, RotatePriority: true})
	r, _ := benchSparseRequests(n)
	for pass := 0; pass < 8; pass++ {
		s.Pass(r)
	}
	pairs := make([][2]int, 0, n)
	r.Ones(func(u, v int) bool {
		pairs = append(pairs, [2]int{u, v})
		return true
	})
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		buf = s.AppendSlotsOf(buf[:0], p[0], p[1])
	}
}
