package core

import (
	"testing"
	"testing/quick"

	"pmsnet/internal/sim"
)

// TestTable3PublishedValues pins the FPGA latency model to the paper's
// Table 3 exactly.
func TestTable3PublishedValues(t *testing.T) {
	want := map[int]sim.Time{4: 34, 8: 49, 16: 76, 32: 120, 64: 213, 128: 385}
	for n, ns := range want {
		if got := FPGALatency(n); got != ns {
			t.Errorf("FPGALatency(%d) = %v, want %v", n, ns, got)
		}
	}
}

func TestASICLatency128Is80ns(t *testing.T) {
	// "We conservatively chose the ASIC performance to be 80 ns for a
	// 128x128 scheduler (about 5x better)."
	if got := ASICLatency(128); got != 80 {
		t.Fatalf("ASICLatency(128) = %v, want 80ns", got)
	}
	s := MustScheduler(Params{N: 128, K: 4})
	if got := s.PassLatency(); got != 80 {
		t.Fatalf("PassLatency = %v, want 80ns", got)
	}
}

func TestLatencyInterpolation(t *testing.T) {
	// Between table entries: linear.
	mid := FPGALatency(48) // between 32 (120) and 64 (213)
	if mid <= 120 || mid >= 213 {
		t.Fatalf("FPGALatency(48) = %v, want strictly between 120 and 213", mid)
	}
	// Below the table: proportional scale-down.
	if got := FPGALatency(2); got <= 0 || got >= 34 {
		t.Fatalf("FPGALatency(2) = %v, want in (0, 34)", got)
	}
	// Beyond the table: linear extrapolation with the last slope.
	if got := FPGALatency(256); got <= 385 {
		t.Fatalf("FPGALatency(256) = %v, want above 385", got)
	}
}

func TestLatencyPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FPGALatency(0)
}

func TestQuickLatencyMonotonic(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := int(a)+1, int(b)+1
		if x > y {
			x, y = y, x
		}
		return FPGALatency(x) <= FPGALatency(y) && ASICLatency(x) <= ASICLatency(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickASICFasterThanFPGA(t *testing.T) {
	f := func(a uint8) bool {
		n := int(a) + 1
		// ASIC is ~5x faster but rounded up to 10 ns; it can never exceed
		// the FPGA figure once the FPGA figure itself is above 10 ns.
		fp := FPGALatency(n)
		as := ASICLatency(n)
		return as <= fp || fp < 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
