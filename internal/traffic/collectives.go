package traffic

import (
	"fmt"
	"math/bits"

	"pmsnet/internal/topology"
)

// MPI-style collectives. The PMS paper's case for predictive switching rests
// on exactly this kind of traffic: the communication structure is fully
// known before the first message moves, so a compiler can hand the preload
// controller the complete working set. Each collective here attaches its
// static phases accordingly.

// AllReduceRing builds the bandwidth-optimal ring all-reduce: 2(n-1) steps
// in which every processor sends one chunk of `bytes` bytes to its ring
// successor (reduce-scatter followed by all-gather). The working set is a
// single permutation — degree 1, the preload controller's best case.
func AllReduceRing(n, bytes int) *Workload {
	checkSize(n, bytes)
	w := &Workload{Name: fmt.Sprintf("all-reduce/ring/%dB", bytes), N: n, Programs: make([]Program, n)}
	phase := topology.NewWorkingSet(n)
	for p := 0; p < n; p++ {
		succ := (p + 1) % n
		phase.Add(topology.Conn{Src: p, Dst: succ})
		ops := make([]Op, 0, 2*(n-1))
		for step := 0; step < 2*(n-1); step++ {
			ops = append(ops, Send(succ, bytes))
		}
		w.Programs[p] = Program{Ops: ops}
	}
	w.StaticPhases = []*topology.WorkingSet{phase}
	return w
}

// AllReduceTree builds the binomial-tree all-reduce: a reduce phase in which
// every non-root processor sends its vector up to parent p - lowbit(p),
// then a compiler flush and a broadcast phase in which the tree edges run
// in reverse. Two static phases with disjoint edge directions — the
// smallest program whose working set genuinely changes mid-run.
func AllReduceTree(n, bytes int) *Workload {
	checkSize(n, bytes)
	w := &Workload{Name: fmt.Sprintf("all-reduce/tree/%dB", bytes), N: n, Programs: make([]Program, n)}
	up := topology.NewWorkingSet(n)
	down := topology.NewWorkingSet(n)
	for p := 0; p < n; p++ {
		ops := []Op{Phase(0)}
		if p != 0 {
			parent := p - (p & -p)
			ops = append(ops, Send(parent, bytes))
			up.Add(topology.Conn{Src: p, Dst: parent})
		}
		ops = append(ops, Flush(), Phase(1))
		for _, child := range binomialChildren(n, p) {
			ops = append(ops, Send(child, bytes))
			down.Add(topology.Conn{Src: p, Dst: child})
		}
		w.Programs[p] = Program{Ops: ops}
	}
	w.StaticPhases = []*topology.WorkingSet{up, down}
	return w
}

// binomialChildren returns processor p's children in the binomial broadcast
// tree rooted at 0: p + 2^k for every k with 2^k > p and p + 2^k < n.
func binomialChildren(n, p int) []int {
	var children []int
	start := 0
	if p > 0 {
		start = bits.Len(uint(p)) // first k with 2^k > p
	}
	for k := start; p+(1<<k) < n; k++ {
		children = append(children, p+(1<<k))
	}
	return children
}

// Broadcast builds the binomial-tree broadcast from processor 0, repeated
// `msgs` times: in round k, every processor p < 2^k with the data forwards
// it to p + 2^k. The tree edges are the single static phase.
func Broadcast(n, bytes, msgs int) *Workload {
	checkSize(n, bytes)
	if msgs <= 0 {
		panic(fmt.Sprintf("traffic: msgs %d must be positive", msgs))
	}
	w := &Workload{Name: fmt.Sprintf("broadcast/%dB", bytes), N: n, Programs: make([]Program, n)}
	phase := topology.NewWorkingSet(n)
	for p := 0; p < n; p++ {
		children := binomialChildren(n, p)
		if len(children) == 0 {
			continue
		}
		for _, c := range children {
			phase.Add(topology.Conn{Src: p, Dst: c})
		}
		ops := make([]Op, 0, msgs*len(children))
		for m := 0; m < msgs; m++ {
			for _, c := range children {
				ops = append(ops, Send(c, bytes))
			}
		}
		w.Programs[p] = Program{Ops: ops}
	}
	w.StaticPhases = []*topology.WorkingSet{phase}
	return w
}

// Gather builds the pure incast collective: every processor except the root
// sends `msgs` messages of `bytes` bytes to processor 0. All demand
// converges on one output port — the single-sink stressor in its
// statically-known form.
func Gather(n, bytes, msgs int) *Workload {
	checkSize(n, bytes)
	if msgs <= 0 {
		panic(fmt.Sprintf("traffic: msgs %d must be positive", msgs))
	}
	w := &Workload{Name: fmt.Sprintf("gather/%dB", bytes), N: n, Programs: make([]Program, n)}
	phase := topology.NewWorkingSet(n)
	for p := 1; p < n; p++ {
		phase.Add(topology.Conn{Src: p, Dst: 0})
		ops := make([]Op, 0, msgs)
		for m := 0; m < msgs; m++ {
			ops = append(ops, Send(0, bytes))
		}
		w.Programs[p] = Program{Ops: ops}
	}
	w.StaticPhases = []*topology.WorkingSet{phase}
	return w
}
