package traffic

import (
	"fmt"
	"math"
	"math/bits"

	"pmsnet/internal/topology"
)

// Classic fixed-permutation workloads: every processor streams `msgs`
// messages to one fixed destination given by a structured permutation. On a
// crossbar all permutations are equal (one configuration, degree 1); on a
// blocking multistage fabric they differ sharply — bit reversal is the
// Omega network's worst case while a uniform shift routes in one pass —
// which is what the fabric experiments exercise.

// permutationWorkload builds a workload from dst = perm(p), skipping fixed
// points.
func permutationWorkload(name string, n, bytes, msgs int, perm func(int) int) *Workload {
	checkSize(n, bytes)
	if msgs <= 0 {
		panic(fmt.Sprintf("traffic: msgs %d must be positive", msgs))
	}
	w := &Workload{Name: fmt.Sprintf("%s/%dB", name, bytes), N: n, Programs: make([]Program, n)}
	phase := topology.NewWorkingSet(n)
	for p := 0; p < n; p++ {
		d := perm(p)
		if d < 0 || d >= n {
			panic(fmt.Sprintf("traffic: %s maps %d to %d outside [0,%d)", name, p, d, n))
		}
		if d == p {
			continue
		}
		phase.Add(topology.Conn{Src: p, Dst: d})
		ops := make([]Op, 0, msgs)
		for m := 0; m < msgs; m++ {
			ops = append(ops, Send(d, bytes))
		}
		w.Programs[p] = Program{Ops: ops}
	}
	w.StaticPhases = []*topology.WorkingSet{phase}
	return w
}

// Transpose builds the matrix-transpose permutation on a sqrt(n) x sqrt(n)
// processor grid: (row, col) sends to (col, row). n must be a perfect
// square.
func Transpose(n, bytes, msgs int) *Workload {
	side := int(math.Round(math.Sqrt(float64(n))))
	if side*side != n {
		panic(fmt.Sprintf("traffic: transpose needs a square processor count, got %d", n))
	}
	return permutationWorkload("transpose", n, bytes, msgs, func(p int) int {
		r, c := p/side, p%side
		return c*side + r
	})
}

// BitReverse builds the bit-reversal permutation (the FFT communication
// pattern). n must be a power of two.
func BitReverse(n, bytes, msgs int) *Workload {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("traffic: bit reverse needs a power-of-two processor count, got %d", n))
	}
	width := bits.Len(uint(n)) - 1
	return permutationWorkload("bit-reverse", n, bytes, msgs, func(p int) int {
		return int(bits.Reverse(uint(p)) >> (bits.UintSize - width))
	})
}

// Shift builds the uniform-shift permutation dst = (p + distance) mod n.
func Shift(n, bytes, msgs, distance int) *Workload {
	if distance%n == 0 {
		panic(fmt.Sprintf("traffic: shift distance %d is a no-op modulo %d", distance, n))
	}
	return permutationWorkload(fmt.Sprintf("shift+%d", distance), n, bytes, msgs, func(p int) int {
		return ((p+distance)%n + n) % n
	})
}
