package traffic

import (
	"fmt"

	"pmsnet/internal/sim"
	"pmsnet/internal/topology"
)

// Adversarial and arrival-process patterns, after Tiny Tera's evaluation
// methodology: traffic crafted to defeat a specific mechanism rather than
// to model an application. PermChurn rotates the working set faster than
// any cache can amortize it; Incast starves one output port; Bursty breaks
// the smooth-arrival assumption the time-out predictor relies on.

// PermChurn builds the scheduler-cache adversary: `rounds` rounds, each a
// fresh seeded random permutation, each connection carrying `msgs` messages
// of `bytes` bytes before the permutation changes. Every round presents the
// scheduler with an unseen request matrix, so the memoized-pass cache never
// hits warm state and warm-started scheduling re-evaluates nearly every
// row — the measurable degradation the adversary sweep pins down.
func PermChurn(n, bytes, msgs, rounds int, seed int64) *Workload {
	checkSize(n, bytes)
	if msgs <= 0 || rounds <= 0 {
		panic(fmt.Sprintf("traffic: perm-churn needs positive msgs and rounds, got msgs=%d rounds=%d", msgs, rounds))
	}
	w := &Workload{Name: fmt.Sprintf("perm-churn/r%d/%dB", rounds, bytes), N: n, Programs: make([]Program, n)}
	perm := make([]int, n)
	for r := 0; r < rounds; r++ {
		rng := sim.NewRNG(seed, uint64(r))
		for i := range perm {
			perm[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		for p := 0; p < n; p++ {
			if perm[p] == p {
				continue
			}
			ops := w.Programs[p].Ops
			for m := 0; m < msgs; m++ {
				ops = append(ops, Send(perm[p], bytes))
			}
			w.Programs[p] = Program{Ops: ops}
		}
	}
	w.StaticPhases = []*topology.WorkingSet{w.ConnSet()}
	return w
}

// Incast builds the VOQ starvation adversary: every processor exchanges
// `background` messages with random mesh neighbors while all processors
// simultaneously stream `msgs` messages into processor 0. Unlike the
// Gather collective, the sink traffic is interleaved with background load,
// so the single hot output column contends with live cross-traffic.
func Incast(n, bytes, msgs, background int, seed int64) *Workload {
	checkSize(n, bytes)
	if msgs <= 0 || background < 0 {
		panic(fmt.Sprintf("traffic: incast needs positive msgs and non-negative background, got msgs=%d background=%d", msgs, background))
	}
	mesh := topology.MeshFor(n, false)
	w := &Workload{Name: fmt.Sprintf("incast/%dB", bytes), N: n, Programs: make([]Program, n)}
	phase := topology.NewWorkingSet(n)
	for p := 0; p < n; p++ {
		rng := sim.NewRNG(seed, uint64(p))
		nbs := mesh.Neighbors(p)
		for _, nb := range nbs {
			phase.Add(topology.Conn{Src: p, Dst: nb})
		}
		if p != 0 {
			phase.Add(topology.Conn{Src: p, Dst: 0})
		}
		steps := msgs
		if background > steps {
			steps = background
		}
		var ops []Op
		for i := 0; i < steps; i++ {
			if i < background {
				ops = append(ops, Send(nbs[rng.Intn(len(nbs))], bytes))
			}
			if i < msgs && p != 0 {
				ops = append(ops, Send(0, bytes))
			}
		}
		w.Programs[p] = Program{Ops: ops}
	}
	w.StaticPhases = []*topology.WorkingSet{phase}
	return w
}

// Bursty builds an MMPP-style on/off arrival process with heavy-tailed
// sizes: each processor emits `msgs` messages in bursts of geometric mean
// length `burst` to uniformly random destinations, idling between bursts
// for a random multiple of the burst length. Message sizes start at
// `bytes` and double with probability 1/4 per level (up to 32x), giving a
// discrete power-law tail. All draws are integer arithmetic on the seeded
// per-processor RNG streams, so the workload is bit-deterministic.
func Bursty(n, bytes, msgs, burst int, seed int64) *Workload {
	checkSize(n, bytes)
	if msgs <= 0 || burst <= 0 {
		panic(fmt.Sprintf("traffic: bursty needs positive msgs and burst, got msgs=%d burst=%d", msgs, burst))
	}
	w := &Workload{Name: fmt.Sprintf("bursty/%dB", bytes), N: n, Programs: make([]Program, n)}
	for p := 0; p < n; p++ {
		rng := sim.NewRNG(seed, uint64(p))
		var ops []Op
		remaining := msgs
		for remaining > 0 {
			blen := 1 + rng.Intn(2*burst-1) // uniform on [1, 2*burst-1], mean = burst
			for i := 0; i < blen && remaining > 0; i++ {
				dst := rng.Intn(n - 1)
				if dst >= p {
					dst++
				}
				size := bytes
				for level := 0; level < 5 && rng.Intn(4) == 0; level++ {
					size *= 2
				}
				ops = append(ops, Send(dst, size))
				remaining--
			}
			if remaining > 0 {
				// Off period: long enough to drain the burst's connections
				// out of a predictor that only remembers recent slots.
				off := sim.Time((1 + rng.Intn(4*burst)) * 100)
				ops = append(ops, Delay(off))
			}
		}
		w.Programs[p] = Program{Ops: ops}
	}
	w.StaticPhases = []*topology.WorkingSet{w.ConnSet()}
	return w
}
