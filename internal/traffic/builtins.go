package traffic

// Registration of every built-in workload family, in the canonical
// vocabulary order the CLIs print: first the paper's evaluation patterns
// and the classic permutations, then the post-paper families (collectives,
// phased programs, arrival-process and adversarial patterns). Schema
// defaults are the shared cross-binary defaults — the values cmd/pmsim's
// flags have always defaulted to.

func init() {
	// --- paper §5 evaluation patterns ---
	Register(&Generator{
		Name: "scatter",
		Doc:  "processor 0 fans one message out to every other processor",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return Scatter(n, a.Int("bytes"))
		},
	})
	Register(&Generator{
		Name: "ordered-mesh",
		Doc:  "deterministic nearest-neighbor rounds (E,W,N,S) on the 2-D mesh",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
			{Name: "rounds", Kind: KindInt, Default: "12", Doc: "neighbor rounds"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return OrderedMesh(n, a.Int("bytes"), a.Int("rounds"))
		},
	})
	Register(&Generator{
		Name: "random-mesh",
		Doc:  "uniformly random nearest-neighbor messages on the 2-D mesh",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
			{Name: "msgs", Kind: KindInt, Default: "50", Doc: "messages per processor"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return RandomMesh(n, a.Int("bytes"), a.Int("msgs"), seed)
		},
	})
	Register(&Generator{
		Name: "all-to-all",
		Doc:  "staggered all-to-all: each step's destinations form a permutation",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return AllToAll(n, a.Int("bytes"))
		},
	})
	Register(&Generator{
		Name: "two-phase",
		Doc:  "an all-to-all phase, a compiler flush, then random neighbor rounds",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return TwoPhase(n, a.Int("bytes"), seed)
		},
	})
	Register(&Generator{
		Name: "mix",
		Doc:  "Figure-5 determinism mix: favored-destination vs random blocking sends",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
			{Name: "msgs", Kind: KindInt, Default: "50", Doc: "messages per processor"},
			{Name: "determinism", Kind: KindFloat, Default: "0.85", Doc: "statically-known traffic fraction"},
			{Name: "think", Kind: KindDuration, Default: "150ns", Doc: "compute time between sends"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return Mix(n, a.Int("bytes"), a.Int("msgs"), a.Float("determinism"), a.Duration("think"), seed)
		},
	})
	Register(&Generator{
		Name: "hotspot",
		Doc:  "random-mesh background plus a heavy corner-to-corner stream",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "background message size"},
			{Name: "msgs", Kind: KindInt, Default: "50", Doc: "background messages per processor"},
			{Name: "hot-bytes", Kind: KindInt, Default: "2048", Doc: "hot-stream message size"},
			{Name: "hot-msgs", Kind: KindInt, Default: "50", Doc: "hot-stream message count"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return Hotspot(n, a.Int("bytes"), a.Int("msgs"), a.Int("hot-bytes"), a.Int("hot-msgs"), seed)
		},
	})

	// --- classic permutations ---
	Register(&Generator{
		Name: "transpose",
		Doc:  "matrix-transpose permutation on a square processor grid",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
			{Name: "msgs", Kind: KindInt, Default: "50", Doc: "messages per processor"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return Transpose(n, a.Int("bytes"), a.Int("msgs"))
		},
	})
	Register(&Generator{
		Name: "bit-reverse",
		Doc:  "bit-reversal (FFT) permutation; needs a power-of-two processor count",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
			{Name: "msgs", Kind: KindInt, Default: "50", Doc: "messages per processor"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return BitReverse(n, a.Int("bytes"), a.Int("msgs"))
		},
	})
	Register(&Generator{
		Name: "shift",
		Doc:  "uniform-shift permutation dst = (p + distance) mod n",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
			{Name: "msgs", Kind: KindInt, Default: "50", Doc: "messages per processor"},
			{Name: "distance", Kind: KindInt, Default: "1", Doc: "shift distance"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return Shift(n, a.Int("bytes"), a.Int("msgs"), a.Int("distance"))
		},
	})
	Register(&Generator{
		Name: "skewed",
		Doc:  "hot permutation over light background shifts — the planner stressor",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
			{Name: "msgs", Kind: KindInt, Default: "4", Doc: "messages per connection"},
			{Name: "factor", Kind: KindInt, Default: "8", Doc: "hot-shift demand multiplier"},
			{Name: "shifts", Kind: KindInt, Default: "8", Doc: "background shift count (shifts 1..count)"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			count := a.Int("shifts")
			if count < 1 {
				panic("skewed needs at least one shift")
			}
			shifts := make([]int, count)
			for i := range shifts {
				shifts[i] = i + 1
			}
			return Skewed("skewed", n, a.Int("bytes"), a.Int("msgs"), a.Int("factor"), shifts)
		},
	})

	// --- collectives (ROADMAP item 4) ---
	Register(&Generator{
		Name: "all-reduce",
		Doc:  "all-reduce collective: ring (bandwidth-optimal) or binomial tree",
		Params: []Param{
			{Name: "algo", Kind: KindEnum, Default: "ring", Enum: []string{"ring", "tree"}, Doc: "algorithm"},
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "chunk size per step"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			if a.Enum("algo") == "tree" {
				return AllReduceTree(n, a.Int("bytes"))
			}
			return AllReduceRing(n, a.Int("bytes"))
		},
	})
	Register(&Generator{
		Name: "broadcast",
		Doc:  "binomial-tree broadcast from processor 0",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
			{Name: "msgs", Kind: KindInt, Default: "1", Doc: "broadcast repetitions"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return Broadcast(n, a.Int("bytes"), a.Int("msgs"))
		},
	})
	Register(&Generator{
		Name: "gather",
		Doc:  "incast gather: every processor sends to the root",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
			{Name: "msgs", Kind: KindInt, Default: "1", Doc: "messages per processor"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return Gather(n, a.Int("bytes"), a.Int("msgs"))
		},
	})

	// --- phase-alternating programs ---
	Register(&Generator{
		Name: "phased",
		Doc:  "NAS-style program alternating stencil and global exchange phases",
		Params: []Param{
			{Name: "phases", Kind: KindInt, Default: "4", Doc: "phase count"},
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
			{Name: "msgs", Kind: KindInt, Default: "16", Doc: "messages per processor per phase"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return Phased(n, a.Int("bytes"), a.Int("msgs"), a.Int("phases"))
		},
	})
	Register(&Generator{
		Name: "tiles",
		Doc:  "SDM-NoC-style layer-wise tile dataflow: layer l streams to layer l+1",
		Params: []Param{
			{Name: "layers", Kind: KindInt, Default: "4", Doc: "layer count"},
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
			{Name: "msgs", Kind: KindInt, Default: "2", Doc: "messages per (src, dst) tile pair"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return Tiles(n, a.Int("bytes"), a.Int("msgs"), a.Int("layers"))
		},
	})

	// --- arrival-process and adversarial patterns ---
	Register(&Generator{
		Name: "bursty",
		Doc:  "MMPP-style on/off bursts with heavy-tailed message sizes",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "base message size"},
			{Name: "msgs", Kind: KindInt, Default: "60", Doc: "messages per processor"},
			{Name: "burst", Kind: KindInt, Default: "8", Doc: "mean burst length"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return Bursty(n, a.Int("bytes"), a.Int("msgs"), a.Int("burst"), seed)
		},
	})
	Register(&Generator{
		Name: "perm-churn",
		Doc:  "fresh random permutation every round — defeats sched-cache/warm-start",
		Params: []Param{
			{Name: "rounds", Kind: KindInt, Default: "16", Doc: "permutation rounds"},
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
			{Name: "msgs", Kind: KindInt, Default: "4", Doc: "messages per round"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return PermChurn(n, a.Int("bytes"), a.Int("msgs"), a.Int("rounds"), seed)
		},
	})
	Register(&Generator{
		Name: "incast",
		Doc:  "adversarial incast: mesh background while everyone floods one sink",
		Params: []Param{
			{Name: "bytes", Kind: KindInt, Default: "64", Doc: "message size"},
			{Name: "msgs", Kind: KindInt, Default: "20", Doc: "sink messages per processor"},
			{Name: "background", Kind: KindInt, Default: "10", Doc: "background neighbor messages"},
		},
		Build: func(n int, a Args, seed int64) *Workload {
			return Incast(n, a.Int("bytes"), a.Int("msgs"), a.Int("background"), seed)
		},
	})
}
