package traffic

import (
	"testing"
)

func countSends(wl *Workload) int {
	n := 0
	for _, prog := range wl.Programs {
		for _, op := range prog.Ops {
			if op.Kind == OpSend || op.Kind == OpSendWait {
				n++
			}
		}
	}
	return n
}

func TestAllReduceRingShape(t *testing.T) {
	const n, bytes = 16, 128
	wl := AllReduceRing(n, bytes)
	if got, want := countSends(wl), n*2*(n-1); got != want {
		t.Errorf("ring all-reduce sends = %d, want %d", got, want)
	}
	ws := wl.ConnSet()
	if ws.Degree() != 1 {
		t.Errorf("ring working set degree = %d, want 1 (a permutation)", ws.Degree())
	}
	for p, prog := range wl.Programs {
		for _, op := range prog.Ops {
			if op.Dst != (p+1)%n {
				t.Fatalf("proc %d sends to %d, want ring successor %d", p, op.Dst, (p+1)%n)
			}
		}
	}
}

func TestAllReduceTreeShape(t *testing.T) {
	for _, n := range []int{2, 7, 16, 33} {
		wl := AllReduceTree(n, 64)
		if err := wl.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(wl.StaticPhases) != 2 {
			t.Fatalf("n=%d: %d static phases, want 2 (reduce, broadcast)", n, len(wl.StaticPhases))
		}
		// Reduce phase: every non-root sends exactly once; broadcast phase
		// mirrors it, so the tree delivers to every non-root exactly once.
		if got, want := wl.StaticPhases[0].Len(), n-1; got != want {
			t.Errorf("n=%d: reduce phase has %d conns, want %d", n, got, want)
		}
		if got, want := wl.StaticPhases[1].Len(), n-1; got != want {
			t.Errorf("n=%d: broadcast phase has %d conns, want %d", n, got, want)
		}
	}
}

func TestBroadcastCoversEveryProcessor(t *testing.T) {
	for _, n := range []int{2, 5, 16} {
		const msgs = 3
		wl := Broadcast(n, 64, msgs)
		recv := make([]int, n)
		for _, prog := range wl.Programs {
			for _, op := range prog.Ops {
				recv[op.Dst]++
			}
		}
		for p := 1; p < n; p++ {
			if recv[p] != msgs {
				t.Errorf("n=%d: proc %d receives %d messages, want %d", n, p, recv[p], msgs)
			}
		}
		if recv[0] != 0 {
			t.Errorf("n=%d: root receives %d messages, want 0", n, recv[0])
		}
	}
}

func TestGatherConvergesOnRoot(t *testing.T) {
	wl := Gather(16, 64, 2)
	for p, prog := range wl.Programs {
		for _, op := range prog.Ops {
			if op.Dst != 0 {
				t.Fatalf("proc %d sends to %d, want the root", p, op.Dst)
			}
		}
	}
	if got, want := countSends(wl), 15*2; got != want {
		t.Errorf("gather sends = %d, want %d", got, want)
	}
}

// TestPhasedCarriesDirectives pins the satellite requirement: the phased
// families emit real PHASEHINT/FLUSH programs whose hints index the static
// phases, and Workload.Validate enforces that indexing.
func TestPhasedCarriesDirectives(t *testing.T) {
	wl := Phased(16, 64, 8, 4)
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(wl.StaticPhases) != 4 {
		t.Fatalf("%d static phases, want 4", len(wl.StaticPhases))
	}
	hints, flushes := 0, 0
	for _, prog := range wl.Programs {
		for _, op := range prog.Ops {
			switch op.Kind {
			case OpPhase:
				hints++
			case OpFlush:
				flushes++
			}
		}
	}
	if hints != 16*4 {
		t.Errorf("phase hints = %d, want one per processor per phase (%d)", hints, 16*4)
	}
	if flushes != 16*3 {
		t.Errorf("flushes = %d, want one per processor per boundary (%d)", flushes, 16*3)
	}

	// Stencil and exchange phases must present different working-set
	// regimes — that alternation is what the compiler analysis detects.
	if s, g := wl.StaticPhases[0].Degree(), wl.StaticPhases[1].Degree(); g <= s {
		t.Errorf("exchange degree %d not above stencil degree %d", g, s)
	}
}

// TestValidateRejectsBadPhaseHints corrupts a generated PHASEHINT and
// checks Validate catches it — the Workload.Validate coverage for
// PHASEHINT-carrying programs.
func TestValidateRejectsBadPhaseHints(t *testing.T) {
	for _, spec := range []string{"phased:phases=3,msgs=6", "tiles:layers=3", "all-reduce:algo=tree", "two-phase"} {
		wl := MustGenerate(spec, 16, 1)
		corrupted := false
	outer:
		for p := range wl.Programs {
			for i, op := range wl.Programs[p].Ops {
				if op.Kind == OpPhase {
					wl.Programs[p].Ops[i].Arg = len(wl.StaticPhases)
					corrupted = true
					break outer
				}
			}
		}
		if !corrupted {
			t.Fatalf("%s: no PHASEHINT to corrupt", spec)
		}
		if err := wl.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an out-of-range PHASEHINT", spec)
		}
	}
}

func TestTilesCrossesAdjacentLayersOnly(t *testing.T) {
	const n, layers = 16, 4
	wl := Tiles(n, 64, 2, layers)
	if len(wl.StaticPhases) != layers-1 {
		t.Fatalf("%d static phases, want %d", len(wl.StaticPhases), layers-1)
	}
	group := func(p int) int { return p * layers / n }
	for p, prog := range wl.Programs {
		for _, op := range prog.Ops {
			if op.Kind != OpSend {
				continue
			}
			if group(op.Dst) != group(p)+1 {
				t.Fatalf("proc %d (layer %d) sends to %d (layer %d), want the next layer",
					p, group(p), op.Dst, group(op.Dst))
			}
		}
	}
	if countSends(wl) == 0 {
		t.Fatal("tiles has no traffic")
	}
}

func TestPermChurnRotatesPermutations(t *testing.T) {
	const n, rounds, msgs = 16, 4, 2
	wl := PermChurn(n, 64, msgs, rounds, 1)
	// The union working set must be much wider than any single permutation:
	// that width is what defeats the scheduling caches.
	if deg := wl.ConnSet().Degree(); deg < 2 {
		t.Errorf("union working-set degree = %d, want >= 2 (distinct permutations)", deg)
	}
	// Destinations must change between rounds for at least one processor.
	changed := false
	for _, prog := range wl.Programs {
		dsts := map[int]bool{}
		for _, op := range prog.Ops {
			if op.Kind == OpSend {
				dsts[op.Dst] = true
			}
		}
		if len(dsts) > 1 {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("every processor kept one destination across all rounds")
	}
}

func TestBurstyShape(t *testing.T) {
	const n, bytes, msgs = 16, 32, 40
	wl := Bursty(n, bytes, msgs, 8, 7)
	if got, want := countSends(wl), n*msgs; got != want {
		t.Errorf("bursty sends = %d, want %d", got, want)
	}
	sawTail, sawDelay := false, false
	for p, prog := range wl.Programs {
		for _, op := range prog.Ops {
			switch op.Kind {
			case OpSend:
				if op.Bytes < bytes || op.Bytes > 32*bytes {
					t.Fatalf("proc %d: size %d outside [%d, %d]", p, op.Bytes, bytes, 32*bytes)
				}
				if op.Bytes > bytes {
					sawTail = true
				}
			case OpDelay:
				sawDelay = true
			}
		}
	}
	if !sawTail {
		t.Error("no heavy-tailed sizes drawn")
	}
	if !sawDelay {
		t.Error("no off periods between bursts")
	}
}

func TestIncastShape(t *testing.T) {
	const n, msgs, background = 16, 8, 4
	wl := Incast(n, 64, msgs, background, 1)
	for p := 1; p < n; p++ {
		sink := 0
		for _, op := range wl.Programs[p].Ops {
			if op.Kind == OpSend && op.Dst == 0 {
				sink++
			}
		}
		// Mesh neighbors of the sink may also route background traffic to it,
		// so the sink count is a floor, not an exact figure.
		if sink < msgs {
			t.Errorf("proc %d sends %d sink messages, want >= %d", p, sink, msgs)
		}
	}
	for _, op := range wl.Programs[0].Ops {
		if op.Dst == 0 {
			t.Fatal("the sink sends to itself")
		}
	}
}
