package traffic

import (
	"testing"
	"testing/quick"

	"pmsnet/internal/topology"
)

func TestOpConstructorsAndKindString(t *testing.T) {
	if op := Send(3, 64); op.Kind != OpSend || op.Dst != 3 || op.Bytes != 64 {
		t.Fatalf("Send = %+v", op)
	}
	if op := Delay(100); op.Kind != OpDelay || op.Delay != 100 {
		t.Fatalf("Delay = %+v", op)
	}
	if Flush().Kind != OpFlush || Phase(2).Arg != 2 {
		t.Fatal("Flush/Phase constructors wrong")
	}
	names := map[OpKind]string{OpSend: "send", OpDelay: "delay", OpFlush: "flush", OpPhase: "phase"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if OpKind(42).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestValidateCatchesBadWorkloads(t *testing.T) {
	good := &Workload{Name: "x", N: 2, Programs: []Program{{Ops: []Op{Send(1, 8)}}, {}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good workload rejected: %v", err)
	}
	bad := []*Workload{
		{Name: "n0", N: 0},
		{Name: "progs", N: 2, Programs: []Program{{}}},
		{Name: "dst", N: 2, Programs: []Program{{Ops: []Op{Send(2, 8)}}, {}}},
		{Name: "self", N: 2, Programs: []Program{{Ops: []Op{Send(0, 8)}}, {}}},
		{Name: "size", N: 2, Programs: []Program{{Ops: []Op{Send(1, 0)}}, {}}},
		{Name: "delay", N: 2, Programs: []Program{{Ops: []Op{Delay(-1)}}, {}}},
		{Name: "phase", N: 2, Programs: []Program{{Ops: []Op{Phase(0)}}, {}}},
		{Name: "kind", N: 2, Programs: []Program{{Ops: []Op{{Kind: OpKind(9)}}}, {}}},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("workload %q should fail validation", w.Name)
		}
	}
	// Static phase with wrong port count.
	wrong := &Workload{Name: "ph", N: 2, Programs: []Program{{}, {}},
		StaticPhases: []*topology.WorkingSet{topology.NewWorkingSet(3)}}
	if err := wrong.Validate(); err == nil {
		t.Error("mismatched static phase should fail validation")
	}
}

func TestScatter(t *testing.T) {
	const n, size = 16, 64
	w := Scatter(n, size)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.MessageCount() != n-1 {
		t.Fatalf("MessageCount = %d, want %d", w.MessageCount(), n-1)
	}
	if w.TotalBytes() != int64((n-1)*size) {
		t.Fatalf("TotalBytes = %d", w.TotalBytes())
	}
	for p := 1; p < n; p++ {
		if len(w.Programs[p].Ops) != 0 {
			t.Fatalf("processor %d should be silent in scatter", p)
		}
	}
	if len(w.StaticPhases) != 1 || w.StaticPhases[0].Len() != n-1 {
		t.Fatal("scatter static phase should hold all fan-out connections")
	}
	// Scatter's working set has degree n-1 (node 0's out-degree).
	if got := w.StaticPhases[0].Degree(); got != n-1 {
		t.Fatalf("scatter degree = %d, want %d", got, n-1)
	}
}

func TestOrderedMeshDeterministicAndDegree4(t *testing.T) {
	const n = 128
	w := OrderedMesh(n, 64, 3)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	w2 := OrderedMesh(n, 64, 3)
	for p := range w.Programs {
		if len(w.Programs[p].Ops) != len(w2.Programs[p].Ops) {
			t.Fatal("ordered mesh must be deterministic")
		}
		for i := range w.Programs[p].Ops {
			if w.Programs[p].Ops[i] != w2.Programs[p].Ops[i] {
				t.Fatal("ordered mesh must be deterministic")
			}
		}
	}
	if got := w.StaticPhases[0].Degree(); got != 4 {
		t.Fatalf("ordered mesh degree = %d, want 4 (the paper's multiplexing degree)", got)
	}
	// Interior node sends 4 messages per round.
	mesh := topology.MeshFor(n, false)
	interior := mesh.Rank(2, 2)
	if got := len(w.Programs[interior].Ops); got != 12 {
		t.Fatalf("interior node ops = %d, want 12 (4 neighbors x 3 rounds)", got)
	}
	// Every destination is a mesh neighbor.
	for p, prog := range w.Programs {
		nbs := map[int]bool{}
		for _, nb := range mesh.Neighbors(p) {
			nbs[nb] = true
		}
		for _, op := range prog.Ops {
			if !nbs[op.Dst] {
				t.Fatalf("proc %d sends to non-neighbor %d", p, op.Dst)
			}
		}
	}
}

func TestRandomMeshSeededAndNeighborsOnly(t *testing.T) {
	const n = 128
	a := RandomMesh(n, 256, 10, 42)
	b := RandomMesh(n, 256, 10, 42)
	c := RandomMesh(n, 256, 10, 43)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	sameAsA := true
	for p := range a.Programs {
		for i := range a.Programs[p].Ops {
			if a.Programs[p].Ops[i] != b.Programs[p].Ops[i] {
				t.Fatal("same seed must reproduce the same workload")
			}
			if a.Programs[p].Ops[i] != c.Programs[p].Ops[i] {
				sameAsA = false
			}
		}
	}
	if sameAsA {
		t.Fatal("different seeds should differ")
	}
	if a.MessageCount() != n*10 {
		t.Fatalf("MessageCount = %d, want %d", a.MessageCount(), n*10)
	}
	mesh := topology.MeshFor(n, false)
	for p, prog := range a.Programs {
		nbs := map[int]bool{}
		for _, nb := range mesh.Neighbors(p) {
			nbs[nb] = true
		}
		for _, op := range prog.Ops {
			if !nbs[op.Dst] {
				t.Fatalf("proc %d sends to non-neighbor %d", p, op.Dst)
			}
		}
	}
}

func TestAllToAllIsStaggeredPermutationSteps(t *testing.T) {
	const n = 8
	w := AllToAll(n, 64)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.MessageCount() != n*(n-1) {
		t.Fatalf("MessageCount = %d, want %d", w.MessageCount(), n*(n-1))
	}
	// At step k, the destinations across processors form a permutation.
	for step := 0; step < n-1; step++ {
		seen := map[int]bool{}
		for p := 0; p < n; p++ {
			d := w.Programs[p].Ops[step].Dst
			if seen[d] {
				t.Fatalf("step %d: destination %d repeated", step, d)
			}
			seen[d] = true
		}
	}
	if w.StaticPhases[0].Len() != n*(n-1) || w.StaticPhases[0].Degree() != n-1 {
		t.Fatal("all-to-all static phase wrong")
	}
}

func TestTwoPhaseStructure(t *testing.T) {
	const n = 16
	w := TwoPhase(n, 128, 7)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.StaticPhases) != 2 {
		t.Fatalf("static phases = %d, want 2", len(w.StaticPhases))
	}
	// Program structure per processor: Phase(0), n-1 sends, Flush, Phase(1),
	// 16 neighbor sends.
	for p, prog := range w.Programs {
		ops := prog.Ops
		if ops[0].Kind != OpPhase || ops[0].Arg != 0 {
			t.Fatalf("proc %d: first op %+v, want Phase(0)", p, ops[0])
		}
		if ops[n].Kind != OpFlush {
			t.Fatalf("proc %d: op %d is %v, want flush after all-to-all", p, n, ops[n].Kind)
		}
		if ops[n+1].Kind != OpPhase || ops[n+1].Arg != 1 {
			t.Fatalf("proc %d: expected Phase(1) after flush", p)
		}
		sends := 0
		for _, op := range ops {
			if op.Kind == OpSend {
				sends++
			}
		}
		if sends != (n-1)+16 {
			t.Fatalf("proc %d: %d sends, want %d", p, sends, n-1+16)
		}
	}
	// Global phase is all-to-all; local phase is the neighbor set.
	if w.StaticPhases[0].Degree() != n-1 {
		t.Fatal("global phase degree wrong")
	}
	if got := w.StaticPhases[1].Degree(); got != 4 {
		t.Fatalf("local phase degree = %d, want 4", got)
	}
}

func TestFavoredDestinations(t *testing.T) {
	const n = 128
	for p := 0; p < n; p++ {
		fav := FavoredDestinations(n, p)
		if fav[0] == p || fav[1] == p || fav[0] == fav[1] {
			t.Fatalf("proc %d: favored %v must be distinct non-self", p, fav)
		}
	}
	// The two favored patterns are permutations: each destination appears
	// exactly once per pattern.
	seen0, seen1 := map[int]bool{}, map[int]bool{}
	for p := 0; p < n; p++ {
		fav := FavoredDestinations(n, p)
		if seen0[fav[0]] || seen1[fav[1]] {
			t.Fatal("favored patterns must be permutations")
		}
		seen0[fav[0]] = true
		seen1[fav[1]] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tiny n")
		}
	}()
	FavoredDestinations(2, 0)
}

func TestMixDeterminismFraction(t *testing.T) {
	const n, msgs = 128, 200
	for _, d := range []float64{0, 0.5, 0.85, 1} {
		w := Mix(n, 64, msgs, d, 0, 5)
		if err := w.Validate(); err != nil {
			t.Fatal(err)
		}
		favored := 0
		for p, prog := range w.Programs {
			fav := FavoredDestinations(n, p)
			for _, op := range prog.Ops {
				if op.Dst == fav[0] || op.Dst == fav[1] {
					favored++
				}
			}
		}
		frac := float64(favored) / float64(n*msgs)
		// Random traffic can also hit a favored destination by chance
		// (~2/128), so the observed fraction slightly exceeds d.
		if frac < d-0.05 || frac > d+0.07 {
			t.Errorf("determinism %v: favored fraction %v out of tolerance", d, frac)
		}
	}
	// The static phase decomposes into exactly two permutations.
	w := Mix(n, 64, 10, 0.5, 0, 1)
	if got := w.StaticPhases[0].Degree(); got != 2 {
		t.Fatalf("mix static degree = %d, want 2", got)
	}
	configs := topology.Decompose(w.StaticPhases[0])
	if len(configs) != 2 {
		t.Fatalf("mix static phase decomposes into %d configs, want 2", len(configs))
	}
}

func TestGeneratorsPanicOnBadArgs(t *testing.T) {
	for i, fn := range []func(){
		func() { Scatter(1, 8) },
		func() { Scatter(8, 0) },
		func() { OrderedMesh(8, 8, 0) },
		func() { RandomMesh(8, 8, 0, 1) },
		func() { Mix(8, 8, 5, 1.5, 0, 1) },
		func() { Mix(8, 8, 0, 0.5, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestConnSetMatchesPrograms(t *testing.T) {
	w := RandomMesh(32, 64, 5, 9)
	cs := w.ConnSet()
	for p, prog := range w.Programs {
		for _, op := range prog.Ops {
			if op.Kind == OpSend && !cs.Contains(topology.Conn{Src: p, Dst: op.Dst}) {
				t.Fatalf("ConnSet missing %d->%d", p, op.Dst)
			}
		}
	}
	// And nothing extra: every connection has at least one send.
	for _, c := range cs.Conns() {
		found := false
		for _, op := range w.Programs[c.Src].Ops {
			if op.Kind == OpSend && op.Dst == c.Dst {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("ConnSet has spurious %v", c)
		}
	}
}

func TestQuickWorkloadsAlwaysValidate(t *testing.T) {
	f := func(seed int64, rawN, rawBytes uint8) bool {
		n := 4 + int(rawN)%60
		bytes := 8 + int(rawBytes)
		for _, w := range []*Workload{
			Scatter(n, bytes),
			OrderedMesh(n, bytes, 2),
			RandomMesh(n, bytes, 3, seed),
			AllToAll(n, bytes),
			TwoPhase(n, bytes, seed),
			Mix(n, bytes, 4, 0.7, 0, seed),
		} {
			if err := w.Validate(); err != nil {
				return false
			}
			if w.ConnSet().Len() == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHotspotWorkload(t *testing.T) {
	const n = 16
	w := Hotspot(n, 64, 5, 2048, 10, 3)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Background: n*5 messages; hot stream: 10 more from node 0.
	if got, want := w.MessageCount(), n*5+10; got != want {
		t.Fatalf("MessageCount = %d, want %d", got, want)
	}
	hot := 0
	for _, op := range w.Programs[0].Ops {
		if op.Kind == OpSend && op.Dst == n-1 && op.Bytes == 2048 {
			hot++
		}
	}
	if hot != 10 {
		t.Fatalf("hot messages = %d, want 10", hot)
	}
	if !w.StaticPhases[0].Contains(topology.Conn{Src: 0, Dst: n - 1}) {
		t.Fatal("hot connection missing from static phase")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad hot stream")
		}
	}()
	Hotspot(n, 64, 5, 0, 10, 3)
}

func TestConcatBuildsPhasedProgram(t *testing.T) {
	a := AllToAll(16, 32)
	b := OrderedMesh(16, 32, 2)
	c := Concat("a2a+mesh", a, b)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.MessageCount() != a.MessageCount()+b.MessageCount() {
		t.Fatal("Concat lost messages")
	}
	if len(c.StaticPhases) != 2 {
		t.Fatalf("phases = %d, want 2", len(c.StaticPhases))
	}
	// Each processor: Phase(0), phase-0 sends, Flush, Phase(1), phase-1 sends.
	for p, prog := range c.Programs {
		if prog.Ops[0].Kind != OpPhase || prog.Ops[0].Arg != 0 {
			t.Fatalf("proc %d: first op %v", p, prog.Ops[0])
		}
		flushes := 0
		for _, op := range prog.Ops {
			if op.Kind == OpFlush {
				flushes++
			}
		}
		if flushes != 1 {
			t.Fatalf("proc %d: %d flushes, want 1", p, flushes)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on processor-count mismatch")
		}
	}()
	Concat("bad", a, OrderedMesh(8, 32, 1))
}

func TestConcatEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Concat("empty")
}
