package traffic

import (
	"fmt"

	"pmsnet/internal/topology"
)

// Phase-alternating programs. NAS-style parallel codes iterate between a
// local stencil regime (degree ~4 neighbor working set) and a global
// exchange regime (degree ~n working set); the paper's §3.3 directives exist
// precisely so the network can be reconfigured proactively at those
// boundaries. Both families here are built through Concat, so every
// processor's program carries the FLUSH + PHASEHINT directives and the
// workload carries one static working set per phase — what a real compiler
// would emit, and what compiler.Analyze should recover from the stripped
// program.

// Phased builds an NAS-style phase-alternating program: even phases are a
// deterministic nearest-neighbor stencil (each processor cycles msgs
// messages over its mesh neighbors), odd phases a staged global exchange
// (each processor sends to partners p+1 .. p+min(msgs, n-1)). The working
// set flips between degree ~4 and degree ~msgs at every boundary.
func Phased(n, bytes, msgs, phases int) *Workload {
	checkSize(n, bytes)
	if msgs <= 0 {
		panic(fmt.Sprintf("traffic: msgs %d must be positive", msgs))
	}
	if phases < 2 {
		panic(fmt.Sprintf("traffic: phased needs at least 2 phases, got %d", phases))
	}
	mesh := topology.MeshFor(n, false)
	parts := make([]*Workload, phases)
	for i := range parts {
		part := &Workload{Name: fmt.Sprintf("phase%d", i), N: n, Programs: make([]Program, n)}
		for p := 0; p < n; p++ {
			var ops []Op
			if i%2 == 0 {
				nbs := mesh.Neighbors(p)
				for m := 0; m < msgs; m++ {
					ops = append(ops, Send(nbs[m%len(nbs)], bytes))
				}
			} else {
				steps := msgs
				if steps > n-1 {
					steps = n - 1
				}
				for step := 1; step <= steps; step++ {
					ops = append(ops, Send((p+step)%n, bytes))
				}
			}
			part.Programs[p] = Program{Ops: ops}
		}
		parts[i] = part
	}
	return Concat(fmt.Sprintf("phased/p%d/%dB", phases, bytes), parts...)
}

// Tiles builds the SDM-NoC-style layer-wise tile dataflow: the processors
// split into `layers` contiguous tile groups, and phase l streams the
// activations of layer l into layer l+1 — every tile of group l sends
// `msgs` messages of `bytes` bytes to every tile of group l+1, then the
// program flushes and advances. The per-phase working sets are dense
// bipartite blocks that shift across the fabric as the "network layers"
// execute in sequence.
func Tiles(n, bytes, msgs, layers int) *Workload {
	checkSize(n, bytes)
	if msgs <= 0 {
		panic(fmt.Sprintf("traffic: msgs %d must be positive", msgs))
	}
	if layers < 2 || layers > n {
		panic(fmt.Sprintf("traffic: tiles needs 2 <= layers <= n, got layers=%d n=%d", layers, n))
	}
	group := func(l int) (lo, hi int) { return l * n / layers, (l + 1) * n / layers }
	parts := make([]*Workload, layers-1)
	for l := 0; l < layers-1; l++ {
		part := &Workload{Name: fmt.Sprintf("layer%d", l), N: n, Programs: make([]Program, n)}
		slo, shi := group(l)
		dlo, dhi := group(l + 1)
		for src := slo; src < shi; src++ {
			var ops []Op
			for m := 0; m < msgs; m++ {
				for dst := dlo; dst < dhi; dst++ {
					if dst == src {
						continue
					}
					ops = append(ops, Send(dst, bytes))
				}
			}
			part.Programs[src] = Program{Ops: ops}
		}
		parts[l] = part
	}
	return Concat(fmt.Sprintf("tiles/l%d/%dB", layers, bytes), parts...)
}
