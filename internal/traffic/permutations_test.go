package traffic

import (
	"testing"

	"pmsnet/internal/topology"
)

func TestTranspose(t *testing.T) {
	w := Transpose(16, 64, 5)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// (1,2) = proc 6 -> (2,1) = proc 9.
	found := false
	for _, op := range w.Programs[6].Ops {
		if op.Kind == OpSend && op.Dst == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("proc 6 should send to proc 9 under transpose")
	}
	// Diagonal processors are fixed points: silent.
	for _, p := range []int{0, 5, 10, 15} {
		if len(w.Programs[p].Ops) != 0 {
			t.Fatalf("diagonal proc %d should be silent", p)
		}
	}
	// The static phase is a single permutation: degree 1.
	if w.StaticPhases[0].Degree() != 1 {
		t.Fatalf("degree = %d, want 1", w.StaticPhases[0].Degree())
	}
	if len(topology.Decompose(w.StaticPhases[0])) != 1 {
		t.Fatal("a permutation decomposes into one crossbar config")
	}
}

func TestBitReverse(t *testing.T) {
	w := BitReverse(8, 32, 3)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3-bit reversal: 1 (001) -> 4 (100); 3 (011) -> 6 (110).
	cases := map[int]int{1: 4, 3: 6, 2: 2, 5: 5}
	for src, dst := range cases {
		if src == dst {
			if len(w.Programs[src].Ops) != 0 {
				t.Fatalf("fixed point %d should be silent", src)
			}
			continue
		}
		if w.Programs[src].Ops[0].Dst != dst {
			t.Fatalf("proc %d sends to %d, want %d", src, w.Programs[src].Ops[0].Dst, dst)
		}
	}
}

func TestShift(t *testing.T) {
	w := Shift(10, 16, 2, 3)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Programs[9].Ops[0].Dst != 2 {
		t.Fatalf("proc 9 shifts to %d, want 2", w.Programs[9].Ops[0].Dst)
	}
	if w.MessageCount() != 20 {
		t.Fatalf("messages = %d, want 20", w.MessageCount())
	}
	// Negative shifts wrap too.
	wn := Shift(10, 16, 1, -3)
	if wn.Programs[0].Ops[0].Dst != 7 {
		t.Fatalf("proc 0 shifts to %d, want 7", wn.Programs[0].Ops[0].Dst)
	}
}

func TestPermutationPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { Transpose(10, 8, 1) },  // not square
		func() { BitReverse(12, 8, 1) }, // not power of two
		func() { Shift(8, 8, 1, 8) },    // identity shift
		func() { Shift(8, 8, 0, 1) },    // no messages
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
