package traffic

import (
	"reflect"
	"strings"
	"testing"
)

// nonDefault returns a valid value for p that differs from its default.
func nonDefault(t *testing.T, g *Generator, p Param) string {
	t.Helper()
	switch p.Kind {
	case KindInt:
		switch {
		case g.Name == "shift" && p.Name == "distance":
			return "3"
		default:
			return "5"
		}
	case KindFloat:
		return "0.5"
	case KindDuration:
		return "75ns"
	case KindEnum:
		for _, e := range p.Enum {
			if e != p.Default {
				return e
			}
		}
		t.Fatalf("%s: enum param %q has a single value", g.Name, p.Name)
	}
	t.Fatalf("%s: unknown kind for param %q", g.Name, p.Name)
	return ""
}

// TestSpecRoundTrip drives the parse↔string round-trip for every registered
// generator: the bare name, a spec with every parameter explicitly set to
// its default (canonicalizes back to the bare name), and a spec with every
// parameter set to a non-default value (survives a reparse exactly).
func TestSpecRoundTrip(t *testing.T) {
	for _, g := range Generators() {
		s, err := ParseSpec(g.Name)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if s.String() != g.Name {
			t.Errorf("%s: bare spec renders %q", g.Name, s.String())
		}

		// All params explicitly at their defaults: the canonical form elides
		// them, so the spec hashes identically to the bare name.
		if len(g.Params) > 0 {
			var parts []string
			for _, p := range g.Params {
				parts = append(parts, p.Name+"="+p.Default)
			}
			withDefaults := g.Name + ":" + strings.Join(parts, ",")
			s, err := ParseSpec(withDefaults)
			if err != nil {
				t.Fatalf("%s: %v", withDefaults, err)
			}
			if s.String() != g.Name {
				t.Errorf("%s: defaulted spec renders %q, want bare %q", withDefaults, s.String(), g.Name)
			}
		}

		// All params at non-default values: String must preserve every one,
		// and reparsing its output must be a fixed point.
		var parts []string
		for _, p := range g.Params {
			parts = append(parts, p.Name+"="+nonDefault(t, g, p))
		}
		if len(parts) == 0 {
			continue
		}
		full := g.Name + ":" + strings.Join(parts, ",")
		s, err = ParseSpec(full)
		if err != nil {
			t.Fatalf("%s: %v", full, err)
		}
		out := s.String()
		for _, p := range g.Params {
			if !strings.Contains(out, p.Name+"=") {
				t.Errorf("%s: rendered spec %q dropped param %q", full, out, p.Name)
			}
		}
		s2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("reparse %q: %v", out, err)
		}
		if s2.String() != out {
			t.Errorf("%s: reparse not a fixed point: %q -> %q", full, out, s2.String())
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"no-such-pattern", "valid: scatter"},
		{"random-mesh:no-such-key=1", "has no parameter"},
		{"random-mesh:msgs=abc", "not an integer"},
		{"random-mesh:msgs=1,msgs=2", "duplicate parameter"},
		{"random-mesh:", "empty parameter list"},
		{"random-mesh:msgs", "malformed parameter"},
		{"all-reduce:algo=butterfly", "not one of ring|tree"},
		{"mix:determinism=x", "not a number"},
		{"mix:think=-5ns", "negative"},
	}
	for _, c := range cases {
		if _, err := ParseSpec(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSpec(%q) = %v, want error containing %q", c.spec, err, c.want)
		}
	}
}

// TestSpecDefaultOverlay pins the CLI flag-overlay semantics: Default fills
// only unset parameters, silently skips keys the generator does not have,
// and rejects invalid values for known keys.
func TestSpecDefaultOverlay(t *testing.T) {
	s, err := ParseSpec("random-mesh:msgs=7")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Default("msgs", "50"); err != nil {
		t.Fatal(err)
	}
	if err := s.Default("bytes", "128"); err != nil {
		t.Fatal(err)
	}
	if err := s.Default("rounds", "12"); err != nil { // not in schema: ignored
		t.Fatal(err)
	}
	if got, want := s.String(), "random-mesh:bytes=128,msgs=7"; got != want {
		t.Errorf("overlaid spec = %q, want %q", got, want)
	}
	if err := s.Default("bytes", "not-a-number"); err != nil {
		t.Errorf("already-set key must not re-validate, got %v", err)
	}
	s2, _ := ParseSpec("random-mesh")
	if err := s2.Default("bytes", "junk"); err == nil {
		t.Error("invalid overlay value for a known unset key must error")
	}
}

// TestGenerateEveryFamily builds every registered generator at its schema
// defaults on the golden topology (n=16: a square power of two, so every
// topology contract holds) and checks the structural invariants Generate
// promises: a validating workload with traffic, the right processor count,
// and the canonical spec attached.
func TestGenerateEveryFamily(t *testing.T) {
	for _, name := range Names() {
		wl, err := Generate(name, 16, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if wl.N != 16 {
			t.Errorf("%s: N = %d", name, wl.N)
		}
		if wl.Spec != name {
			t.Errorf("%s: Spec = %q", name, wl.Spec)
		}
		if wl.MessageCount() == 0 {
			t.Errorf("%s: no messages", name)
		}
		if len(wl.StaticPhases) == 0 {
			t.Errorf("%s: no static phases", name)
		}
		// Same spec, same seed, same workload: generators must be pure.
		again, err := Generate(name, 16, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wl, again) {
			t.Errorf("%s: not deterministic", name)
		}
	}
}

// TestGenerateRecoversConstructorPanics: contract violations inside the
// underlying constructors surface as errors, never panics.
func TestGenerateRecoversConstructorPanics(t *testing.T) {
	cases := []struct {
		spec string
		n    int
	}{
		{"transpose", 15},           // not a square
		{"bit-reverse", 12},         // not a power of two
		{"shift:distance=16", 16},   // self-loop shift
		{"scatter:bytes=-1", 16},    // non-positive size
		{"tiles:layers=20", 16},     // more layers than processors
		{"phased:phases=1", 16},     // too few phases
		{"skewed:shifts=0", 16},     // no shifts
		{"random-mesh:msgs=0", 16},  // no messages
		{"perm-churn:rounds=0", 16}, // no rounds
		{"scatter", 1},              // too few processors
		{"incast:msgs=0", 16},       // no sink messages
		{"bursty:burst=0", 16},      // empty bursts
		{"broadcast:msgs=0", 16},    // no repetitions
		{"gather:msgs=0", 16},       // no messages
		{"all-reduce:bytes=0", 16},  // non-positive size
		{"ordered-mesh:rounds=0", 16} /* no rounds */}
	for _, c := range cases {
		wl, err := Generate(c.spec, c.n, 1)
		if err == nil {
			t.Errorf("Generate(%q, n=%d) built %q, want error", c.spec, c.n, wl.Name)
		}
	}
}

// FuzzWorkloadSpec fuzzes the spec parser: any input either fails to parse
// or canonicalizes to a fixed point (parse → render → parse → render is
// stable, and the canonical form parses back to the same generator).
func FuzzWorkloadSpec(f *testing.F) {
	for _, name := range Names() {
		f.Add(name)
	}
	f.Add("all-reduce:algo=tree,bytes=256")
	f.Add("mix:determinism=0.5,think=1us")
	f.Add("shift:distance=-3")
	f.Add("random-mesh:msgs=7,bytes=128")
	f.Add("perm-churn:rounds=2,msgs=1")
	f.Add("bogus::=,")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpec(spec)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q (of %q) does not reparse: %v", canon, spec, err)
		}
		if s2.String() != canon {
			t.Fatalf("canonicalization unstable: %q -> %q -> %q", spec, canon, s2.String())
		}
		if s2.Name() != s.Name() {
			t.Fatalf("generator changed across round-trip: %q -> %q", s.Name(), s2.Name())
		}
		// Canonicalization may elide params explicitly set to their defaults,
		// so compare resolved values, not the explicitly-set key sets.
		if !reflect.DeepEqual(s.Args(), s2.Args()) {
			t.Fatalf("resolved params changed across round-trip: %q -> %q (explicit %v -> %v)",
				spec, canon, s.setKeys(), s2.setKeys())
		}
	})
}
