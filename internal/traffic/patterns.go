package traffic

import (
	"fmt"

	"pmsnet/internal/sim"
	"pmsnet/internal/topology"
)

// Scatter builds the paper's Scatter test: processor 0 sends a unique
// message of `bytes` bytes to every other processor. The full fan-out is
// statically known, so the single static phase contains all N-1 connections
// (degree N-1: the preload controller will cycle it through the K slots).
func Scatter(n, bytes int) *Workload {
	checkSize(n, bytes)
	w := &Workload{Name: fmt.Sprintf("scatter/%dB", bytes), N: n, Programs: make([]Program, n)}
	phase := topology.NewWorkingSet(n)
	var ops []Op
	for d := 1; d < n; d++ {
		ops = append(ops, Send(d, bytes))
		phase.Add(topology.Conn{Src: 0, Dst: d})
	}
	w.Programs[0] = Program{Ops: ops}
	w.StaticPhases = []*topology.WorkingSet{phase}
	return w
}

// OrderedMesh builds the paper's Ordered Mesh test: every processor sends to
// its 2-D mesh neighbors in the deterministic E,W,N,S round order, `rounds`
// times. The pattern is fully regular; the static phase is the complete
// nearest-neighbor working set (degree 4 on an interior mesh — exactly the
// multiplexing degree the paper simulates with).
func OrderedMesh(n, bytes, rounds int) *Workload {
	checkSize(n, bytes)
	if rounds <= 0 {
		panic(fmt.Sprintf("traffic: rounds %d must be positive", rounds))
	}
	mesh := topology.MeshFor(n, false)
	w := &Workload{Name: fmt.Sprintf("ordered-mesh/%dB", bytes), N: n, Programs: make([]Program, n)}
	phase := topology.NewWorkingSet(n)
	for p := 0; p < n; p++ {
		var ops []Op
		for r := 0; r < rounds; r++ {
			for _, d := range topology.Directions() {
				nb := mesh.Neighbor(p, d)
				if nb < 0 || nb == p {
					continue
				}
				ops = append(ops, Send(nb, bytes))
				if r == 0 {
					phase.Add(topology.Conn{Src: p, Dst: nb})
				}
			}
		}
		w.Programs[p] = Program{Ops: ops}
	}
	w.StaticPhases = []*topology.WorkingSet{phase}
	return w
}

// RandomMesh builds the paper's Random Mesh test: nearest-neighbor
// communication on the 2-D mesh "but without any predictability" — each of
// the `msgs` messages per processor goes to a uniformly random neighbor.
// The *set* of possible connections is still statically known (the neighbor
// working set), which is what a compiler could preload; the order is not.
func RandomMesh(n, bytes, msgs int, seed int64) *Workload {
	checkSize(n, bytes)
	if msgs <= 0 {
		panic(fmt.Sprintf("traffic: msgs %d must be positive", msgs))
	}
	mesh := topology.MeshFor(n, false)
	w := &Workload{Name: fmt.Sprintf("random-mesh/%dB", bytes), N: n, Programs: make([]Program, n)}
	phase := topology.NewWorkingSet(n)
	for p := 0; p < n; p++ {
		rng := sim.NewRNG(seed, uint64(p))
		nbs := mesh.Neighbors(p)
		var ops []Op
		for m := 0; m < msgs; m++ {
			ops = append(ops, Send(nbs[rng.Intn(len(nbs))], bytes))
		}
		w.Programs[p] = Program{Ops: ops}
		for _, nb := range nbs {
			phase.Add(topology.Conn{Src: p, Dst: nb})
		}
	}
	w.StaticPhases = []*topology.WorkingSet{phase}
	return w
}

// AllToAll builds a staggered all-to-all: processor i sends one message to
// i+1, i+2, ..., i+n-1 (mod n), so at each step the destinations form a
// permutation. This is the global phase of the paper's Two-Phase test.
func AllToAll(n, bytes int) *Workload {
	checkSize(n, bytes)
	w := &Workload{Name: fmt.Sprintf("all-to-all/%dB", bytes), N: n, Programs: make([]Program, n)}
	phase := topology.NewWorkingSet(n)
	for p := 0; p < n; p++ {
		var ops []Op
		for step := 1; step < n; step++ {
			d := (p + step) % n
			ops = append(ops, Send(d, bytes))
			phase.Add(topology.Conn{Src: p, Dst: d})
		}
		w.Programs[p] = Program{Ops: ops}
	}
	w.StaticPhases = []*topology.WorkingSet{phase}
	return w
}

// TwoPhase builds the paper's Two Phase test: "one 128-processor all-to-all
// communication followed by 16 random nearest neighbor communications." A
// compiler-style FLUSH plus a phase hint separate the phases (paper §3.3),
// and the two static phases (the all-to-all set, the neighbor set) are
// attached for the preload controller.
func TwoPhase(n, bytes int, seed int64) *Workload {
	checkSize(n, bytes)
	const nnRounds = 16
	mesh := topology.MeshFor(n, false)
	w := &Workload{Name: fmt.Sprintf("two-phase/%dB", bytes), N: n, Programs: make([]Program, n)}
	global := topology.NewWorkingSet(n)
	local := topology.NewWorkingSet(n)
	for p := 0; p < n; p++ {
		rng := sim.NewRNG(seed, uint64(p))
		var ops []Op
		ops = append(ops, Phase(0))
		for step := 1; step < n; step++ {
			d := (p + step) % n
			ops = append(ops, Send(d, bytes))
			global.Add(topology.Conn{Src: p, Dst: d})
		}
		ops = append(ops, Flush(), Phase(1))
		nbs := mesh.Neighbors(p)
		for m := 0; m < nnRounds; m++ {
			ops = append(ops, Send(nbs[rng.Intn(len(nbs))], bytes))
		}
		for _, nb := range nbs {
			local.Add(topology.Conn{Src: p, Dst: nb})
		}
		w.Programs[p] = Program{Ops: ops}
	}
	w.StaticPhases = []*topology.WorkingSet{global, local}
	return w
}

// FavoredDestinations returns processor p's two fixed favored destinations
// for the determinism-mix workload: the two static permutations dst=(p+1)
// mod n and dst=(p+stride) mod n, where stride is the mesh width (so the
// second permutation is the "south neighbor on the torus" pattern).
func FavoredDestinations(n, p int) [2]int {
	if n < 3 {
		panic(fmt.Sprintf("traffic: determinism mix needs n >= 3, got %d", n))
	}
	if p < 0 || p >= n {
		panic(fmt.Sprintf("traffic: processor %d outside [0,%d)", p, n))
	}
	stride := topology.MeshFor(n, true).Cols
	if stride <= 1 || stride >= n {
		stride = 2
	}
	return [2]int{(p + 1) % n, (p + stride) % n}
}

// Mix builds the Figure-5 workload: each processor alternates compute time
// (`think` nanoseconds) with sends; with probability `determinism` a message
// goes to one of the processor's two favored destinations (the statically
// known part a compiler could preload), otherwise to a uniformly random
// other processor. The static phase contains the two favored permutations,
// which decompose into exactly two conflict-free configurations — so k=1
// preloads one permutation and k=2 preloads both, matching the paper's
// 1-preload/2-dynamic and 2-preload/1-dynamic schemes at multiplexing
// degree 3.
//
// Sends are blocking (the processor waits for delivery before computing on),
// and the think time makes the traffic sparse: favored connections are not
// kept alive by a standing backlog, so the benefit of preloading them (no
// run-time scheduling on every reuse) is visible — the regime Figure 5
// explores.
func Mix(n, bytes, msgs int, determinism float64, think sim.Time, seed int64) *Workload {
	checkSize(n, bytes)
	if msgs <= 0 {
		panic(fmt.Sprintf("traffic: msgs %d must be positive", msgs))
	}
	if determinism < 0 || determinism > 1 {
		panic(fmt.Sprintf("traffic: determinism %v outside [0,1]", determinism))
	}
	if think < 0 {
		panic(fmt.Sprintf("traffic: negative think time %v", think))
	}
	w := &Workload{
		Name:     fmt.Sprintf("mix/%dB/d%.0f", bytes, determinism*100),
		N:        n,
		Programs: make([]Program, n),
	}
	phase := topology.NewWorkingSet(n)
	for p := 0; p < n; p++ {
		fav := FavoredDestinations(n, p)
		phase.Add(topology.Conn{Src: p, Dst: fav[0]})
		phase.Add(topology.Conn{Src: p, Dst: fav[1]})
		rng := sim.NewRNG(seed, uint64(p))
		var ops []Op
		for m := 0; m < msgs; m++ {
			if think > 0 {
				ops = append(ops, Delay(think))
			}
			var d int
			if rng.Float64() < determinism {
				d = fav[rng.Intn(2)]
			} else {
				for {
					d = rng.Intn(n)
					if d != p {
						break
					}
				}
			}
			ops = append(ops, SendWait(d, bytes))
		}
		w.Programs[p] = Program{Ops: ops}
	}
	w.StaticPhases = []*topology.WorkingSet{phase}
	return w
}

// Hotspot builds a bandwidth-amplification stressor: every processor
// exchanges `msgs` background messages with random mesh neighbors, while
// processor 0 additionally streams `hotMsgs` messages of `hotBytes` bytes to
// the far corner processor n-1. The hot connection's backlog outruns a
// single TDM slot share, which is the case core extension 2 (multi-slot
// connections) addresses.
func Hotspot(n, bytes, msgs, hotBytes, hotMsgs int, seed int64) *Workload {
	checkSize(n, bytes)
	if hotBytes <= 0 || hotMsgs <= 0 {
		panic(fmt.Sprintf("traffic: hot stream %dx%dB must be positive", hotMsgs, hotBytes))
	}
	w := RandomMesh(n, bytes, msgs, seed)
	w.Name = fmt.Sprintf("hotspot/%dB+%dx%dB", bytes, hotMsgs, hotBytes)
	hot := w.Programs[0].Ops
	for m := 0; m < hotMsgs; m++ {
		hot = append(hot, Send(n-1, hotBytes))
	}
	w.Programs[0] = Program{Ops: hot}
	w.StaticPhases[0].Add(topology.Conn{Src: 0, Dst: n - 1})
	return w
}

func checkSize(n, bytes int) {
	if n < 2 {
		panic(fmt.Sprintf("traffic: need at least 2 processors, got %d", n))
	}
	if bytes <= 0 {
		panic(fmt.Sprintf("traffic: message size %d must be positive", bytes))
	}
}
