package traffic

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"pmsnet/internal/sim"
)

// This file is the workload-generator registry: every traffic family the
// simulators can build is registered here under a canonical name with a
// typed parameter schema, and every binary (pmsim, pmsopt, pmsd, figures,
// the experiments harnesses) resolves patterns through it. A generator is
// addressed by a spec string,
//
//	name[:key=value,key=value,...]
//
// e.g. "random-mesh", "all-reduce:algo=ring,bytes=64". ParseSpec validates
// the name and every key/value against the schema; Spec.String renders the
// canonical form (schema parameter order, canonical value encodings,
// defaults elided), so parse↔string round-trips. Generated workloads carry
// their canonical spec in Workload.Spec, which the PMSTRACE serialization —
// and therefore Workload.Hash — folds in.

// ParamKind is the type of a generator parameter.
type ParamKind int

// Parameter kinds.
const (
	// KindInt is a (possibly negative) integer, e.g. "64" or "-3".
	KindInt ParamKind = iota
	// KindFloat is a decimal number, e.g. "0.85".
	KindFloat
	// KindDuration is a time.ParseDuration string ("150ns", "1.2us") or a
	// bare integer nanosecond count.
	KindDuration
	// KindEnum is one of a fixed set of strings.
	KindEnum
)

// String implements fmt.Stringer.
func (k ParamKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindDuration:
		return "duration"
	case KindEnum:
		return "enum"
	default:
		return fmt.Sprintf("ParamKind(%d)", int(k))
	}
}

// Param is one schema entry: a typed, defaulted generator parameter.
type Param struct {
	Name string
	Kind ParamKind
	// Default is the canonical encoding of the parameter's default value.
	Default string
	// Enum lists the allowed values of a KindEnum parameter.
	Enum []string
	// Doc is a one-line description for usage text.
	Doc string
}

// Args carries a generator call's fully resolved parameter values: every
// schema parameter is present, explicit values overriding defaults. The
// typed accessors panic on a missing name or an unparseable value — both are
// registry bugs, impossible for values that went through ParseSpec.
type Args struct {
	vals map[string]string
}

// Int returns an integer parameter.
func (a Args) Int(name string) int {
	v, err := strconv.Atoi(a.get(name))
	if err != nil {
		panic(fmt.Sprintf("traffic: registry bug: param %q: %v", name, err))
	}
	return v
}

// Float returns a float parameter.
func (a Args) Float(name string) float64 {
	v, err := strconv.ParseFloat(a.get(name), 64)
	if err != nil {
		panic(fmt.Sprintf("traffic: registry bug: param %q: %v", name, err))
	}
	return v
}

// Duration returns a duration parameter in simulated nanoseconds.
func (a Args) Duration(name string) sim.Time {
	d, err := parseDuration(a.get(name))
	if err != nil {
		panic(fmt.Sprintf("traffic: registry bug: param %q: %v", name, err))
	}
	return d
}

// Enum returns an enum parameter's value.
func (a Args) Enum(name string) string { return a.get(name) }

func (a Args) get(name string) string {
	v, ok := a.vals[name]
	if !ok {
		panic(fmt.Sprintf("traffic: registry bug: no param %q", name))
	}
	return v
}

// Generator is one registered workload family.
type Generator struct {
	// Name is the canonical spec name (lowercase, '-'-separated).
	Name string
	// Doc is a one-line description for usage text.
	Doc string
	// Params is the parameter schema, in canonical (rendering) order.
	Params []Param
	// Build constructs the workload. Contract violations (bad processor
	// counts, non-square N, ...) panic like the underlying constructors do;
	// Spec.Generate converts the panic into an error.
	Build func(n int, args Args, seed int64) *Workload
}

// Schema renders the parameter schema as "key=default,key=default" for
// usage text; an empty string when the generator takes no parameters.
func (g *Generator) Schema() string {
	parts := make([]string, len(g.Params))
	for i, p := range g.Params {
		parts[i] = p.Name + "=" + p.Default
	}
	return strings.Join(parts, ",")
}

// param looks a schema entry up by name.
func (g *Generator) param(name string) (Param, bool) {
	for _, p := range g.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

var registry struct {
	byName map[string]*Generator
	order  []string
}

// reservedNames are spec names the surrounding tooling claims for itself:
// "list" prints the vocabulary in the CLIs, "trace" selects an inline
// PMSTRACE program in pmsd, and "panic"/"sleep" are pmsd's test patterns.
var reservedNames = map[string]bool{"list": true, "trace": true, "panic": true, "sleep": true}

// Register adds a generator to the registry. It panics on an invalid
// schema or a duplicate name — registration happens at init time and a bad
// entry is a programming error.
func Register(g *Generator) {
	if registry.byName == nil {
		registry.byName = map[string]*Generator{}
	}
	if g.Name == "" || strings.ContainsAny(g.Name, ":,= \t\n") {
		panic(fmt.Sprintf("traffic: invalid generator name %q", g.Name))
	}
	if reservedNames[g.Name] {
		panic(fmt.Sprintf("traffic: generator name %q is reserved", g.Name))
	}
	if _, dup := registry.byName[g.Name]; dup {
		panic(fmt.Sprintf("traffic: duplicate generator %q", g.Name))
	}
	if g.Build == nil {
		panic(fmt.Sprintf("traffic: generator %q has no Build", g.Name))
	}
	seen := map[string]bool{}
	for _, p := range g.Params {
		if p.Name == "" || strings.ContainsAny(p.Name, ":,= \t\n") {
			panic(fmt.Sprintf("traffic: generator %q: invalid param name %q", g.Name, p.Name))
		}
		if seen[p.Name] {
			panic(fmt.Sprintf("traffic: generator %q: duplicate param %q", g.Name, p.Name))
		}
		seen[p.Name] = true
		if canon, err := canonicalValue(p, p.Default); err != nil || canon != p.Default {
			panic(fmt.Sprintf("traffic: generator %q: param %q default %q is not canonical (err=%v)",
				g.Name, p.Name, p.Default, err))
		}
	}
	registry.byName[g.Name] = g
	registry.order = append(registry.order, g.Name)
}

// Names lists the registered generator names in registration order —
// the canonical vocabulary the CLIs print for `-pattern list`.
func Names() []string {
	out := make([]string, len(registry.order))
	copy(out, registry.order)
	return out
}

// Lookup finds a generator by name.
func Lookup(name string) (*Generator, bool) {
	g, ok := registry.byName[name]
	return g, ok
}

// Generators lists the registered generators in registration order.
func Generators() []*Generator {
	out := make([]*Generator, len(registry.order))
	for i, name := range registry.order {
		out[i] = registry.byName[name]
	}
	return out
}

// Spec is a parsed generator invocation: a registered generator plus the
// explicitly set parameter values (canonical encodings).
type Spec struct {
	gen *Generator
	set map[string]string
}

// ParseSpec parses "name[:key=value,...]" against the registry, validating
// the generator name, every key against its schema, and every value against
// its parameter kind.
func ParseSpec(spec string) (*Spec, error) {
	name, rest, hasParams := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	g, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("traffic: unknown pattern %q (valid: %s)", name, strings.Join(Names(), ", "))
	}
	s := &Spec{gen: g, set: map[string]string{}}
	if !hasParams {
		return s, nil
	}
	if strings.TrimSpace(rest) == "" {
		return nil, fmt.Errorf("traffic: pattern %q: empty parameter list after ':'", name)
	}
	for _, item := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(item, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("traffic: pattern %q: malformed parameter %q (want key=value)", name, item)
		}
		p, ok := g.param(key)
		if !ok {
			return nil, fmt.Errorf("traffic: pattern %q has no parameter %q (schema: %s)", name, key, g.Schema())
		}
		if _, dup := s.set[key]; dup {
			return nil, fmt.Errorf("traffic: pattern %q: duplicate parameter %q", name, key)
		}
		canon, err := canonicalValue(p, val)
		if err != nil {
			return nil, fmt.Errorf("traffic: pattern %q: parameter %q: %w", name, key, err)
		}
		s.set[key] = canon
	}
	return s, nil
}

// Name returns the generator name.
func (s *Spec) Name() string { return s.gen.Name }

// String renders the canonical spec: the generator name plus every
// explicitly set parameter whose value differs from its default, in schema
// order with canonical value encodings. ParseSpec(s.String()) reproduces s
// exactly, and two specs that build identical workloads render identically.
func (s *Spec) String() string {
	var parts []string
	for _, p := range s.gen.Params {
		if v, ok := s.set[p.Name]; ok && v != p.Default {
			parts = append(parts, p.Name+"="+v)
		}
	}
	if len(parts) == 0 {
		return s.gen.Name
	}
	return s.gen.Name + ":" + strings.Join(parts, ",")
}

// Default sets a parameter only when the spec did not already set it — the
// overlay the CLIs use to fold flag values under an explicit spec. Unknown
// keys are ignored (a shared flag like -msgs simply has no effect on a
// generator without a msgs parameter); invalid values for known keys error.
func (s *Spec) Default(key, value string) error {
	p, ok := s.gen.param(key)
	if !ok {
		return nil
	}
	if _, isSet := s.set[key]; isSet {
		return nil
	}
	canon, err := canonicalValue(p, value)
	if err != nil {
		return fmt.Errorf("traffic: pattern %q: parameter %q: %w", s.gen.Name, key, err)
	}
	s.set[key] = canon
	return nil
}

// Args resolves the call's parameter values: explicit over defaults.
func (s *Spec) Args() Args {
	vals := make(map[string]string, len(s.gen.Params))
	for _, p := range s.gen.Params {
		vals[p.Name] = p.Default
	}
	for k, v := range s.set {
		vals[k] = v
	}
	return Args{vals: vals}
}

// Generate builds the workload for n processors at the given seed. The
// underlying constructors enforce their contracts by panicking; Generate
// converts those panics into errors so callers (CLIs, the pmsd admission
// path) stay panic-free. The result carries the canonical spec in
// Workload.Spec and is validated before return.
func (s *Spec) Generate(n int, seed int64) (wl *Workload, err error) {
	defer func() {
		if r := recover(); r != nil {
			wl, err = nil, fmt.Errorf("traffic: pattern %q: %v", s.String(), r)
		}
	}()
	wl = s.gen.Build(n, s.Args(), seed)
	wl.Spec = s.String()
	if verr := wl.Validate(); verr != nil {
		return nil, fmt.Errorf("traffic: pattern %q built an invalid workload: %w", s.String(), verr)
	}
	return wl, nil
}

// Generate parses a spec and builds its workload in one step.
func Generate(spec string, n int, seed int64) (*Workload, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return s.Generate(n, seed)
}

// MustGenerate is Generate for harnesses with known-good specs.
func MustGenerate(spec string, n int, seed int64) *Workload {
	wl, err := Generate(spec, n, seed)
	if err != nil {
		panic(err)
	}
	return wl
}

// canonicalValue validates a raw value against a parameter and returns its
// canonical encoding.
func canonicalValue(p Param, raw string) (string, error) {
	switch p.Kind {
	case KindInt:
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return "", fmt.Errorf("%q is not an integer", raw)
		}
		return strconv.FormatInt(v, 10), nil
	case KindFloat:
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return "", fmt.Errorf("%q is not a number", raw)
		}
		return strconv.FormatFloat(v, 'g', -1, 64), nil
	case KindDuration:
		d, err := parseDuration(raw)
		if err != nil {
			return "", err
		}
		return time.Duration(d).String(), nil
	case KindEnum:
		for _, e := range p.Enum {
			if raw == e {
				return raw, nil
			}
		}
		return "", fmt.Errorf("%q is not one of %s", raw, strings.Join(p.Enum, "|"))
	default:
		return "", fmt.Errorf("unknown parameter kind %d", int(p.Kind))
	}
}

// parseDuration accepts a time.ParseDuration string or a bare integer
// nanosecond count, and rejects negatives (no workload delay may be
// negative).
func parseDuration(raw string) (sim.Time, error) {
	if ns, err := strconv.ParseInt(raw, 10, 64); err == nil {
		if ns < 0 {
			return 0, fmt.Errorf("duration %q is negative", raw)
		}
		return sim.Time(ns), nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("%q is not a duration", raw)
	}
	if d < 0 {
		return 0, fmt.Errorf("duration %q is negative", raw)
	}
	return sim.Time(d.Nanoseconds()), nil
}

// sortedSetKeys is a test helper surface: the explicitly set parameter
// names, sorted.
func (s *Spec) setKeys() []string {
	keys := make([]string, 0, len(s.set))
	for k := range s.set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
