// Package traffic defines workloads for the switch simulators: per-processor
// programs of sends and control directives, plus generators for every
// pattern in the paper's evaluation (Scatter, Random Mesh, Ordered Mesh,
// All-to-All, Two-Phase, and the Figure-5 determinism mix).
//
// Each of the 128 processors in the paper's simulation "contains a command
// file that defines the type and sequence of communications that occur"
// (§5). A Program is that command file: an ordered list of operations the
// processor executes. A Workload bundles one program per processor together
// with the statically-known communication phases a compiler would extract —
// the input to the preload controller (paper §3.1).
package traffic

import (
	"fmt"
	"strings"

	"pmsnet/internal/sim"
	"pmsnet/internal/topology"
)

// OpKind enumerates program operations.
type OpKind int

// Program operation kinds.
const (
	// OpSend enqueues a message of Bytes bytes to processor Dst.
	OpSend OpKind = iota
	// OpDelay pauses the program for Delay nanoseconds (compute time).
	OpDelay
	// OpFlush asks the scheduler to flush all dynamic connections — the
	// compiler-inserted directive between program phases (paper §3.3).
	OpFlush
	// OpPhase hints that the program enters statically-known phase Arg; the
	// preload controller advances its configuration sequence accordingly.
	OpPhase
	// OpSendWait enqueues a message like OpSend and then blocks the program
	// until the message is delivered — a blocking (rendezvous-style) send.
	OpSendWait
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpSend:
		return "send"
	case OpDelay:
		return "delay"
	case OpFlush:
		return "flush"
	case OpPhase:
		return "phase"
	case OpSendWait:
		return "sendwait"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one program operation.
type Op struct {
	Kind  OpKind
	Dst   int      // OpSend: destination processor
	Bytes int      // OpSend: message size
	Delay sim.Time // OpDelay: pause duration
	Arg   int      // OpPhase: phase index
}

// Send builds an OpSend.
func Send(dst, bytes int) Op { return Op{Kind: OpSend, Dst: dst, Bytes: bytes} }

// SendWait builds an OpSendWait: the program blocks until delivery.
func SendWait(dst, bytes int) Op { return Op{Kind: OpSendWait, Dst: dst, Bytes: bytes} }

// Delay builds an OpDelay.
func Delay(d sim.Time) Op { return Op{Kind: OpDelay, Delay: d} }

// Flush builds an OpFlush.
func Flush() Op { return Op{Kind: OpFlush} }

// Phase builds an OpPhase.
func Phase(i int) Op { return Op{Kind: OpPhase, Arg: i} }

// Program is one processor's command file.
type Program struct {
	Ops []Op
}

// Workload is a complete simulation input.
type Workload struct {
	// Name labels the workload in results.
	Name string
	// Spec is the canonical generator spec that built the workload (see
	// ParseSpec), empty for workloads assembled by hand or read from traces
	// that omit it. It rides along in the PMSTRACE serialization, so
	// Workload hashes distinguish same-shape traffic from different
	// generator invocations.
	Spec string
	// N is the processor count.
	N int
	// Programs holds one program per processor (len N).
	Programs []Program
	// StaticPhases lists the statically-known communication working sets in
	// phase order, as a compiler would emit them (empty when nothing is
	// known statically). The preload controller decomposes each phase into
	// crossbar configurations.
	StaticPhases []*topology.WorkingSet
}

// Validate checks structural consistency: program count matches N, all sends
// target existing, non-self processors with positive sizes, delays are
// non-negative, and phase hints index StaticPhases.
func (w *Workload) Validate() error {
	if w.N <= 0 {
		return fmt.Errorf("traffic: workload %q has N=%d", w.Name, w.N)
	}
	if len(w.Programs) != w.N {
		return fmt.Errorf("traffic: workload %q has %d programs for %d processors", w.Name, len(w.Programs), w.N)
	}
	if strings.ContainsAny(w.Spec, " \t\n") {
		return fmt.Errorf("traffic: workload %q spec %q contains whitespace", w.Name, w.Spec)
	}
	for p, prog := range w.Programs {
		for i, op := range prog.Ops {
			switch op.Kind {
			case OpSend, OpSendWait:
				if op.Dst < 0 || op.Dst >= w.N {
					return fmt.Errorf("traffic: proc %d op %d: destination %d outside [0,%d)", p, i, op.Dst, w.N)
				}
				if op.Dst == p {
					return fmt.Errorf("traffic: proc %d op %d: self-send", p, i)
				}
				if op.Bytes <= 0 {
					return fmt.Errorf("traffic: proc %d op %d: size %d", p, i, op.Bytes)
				}
			case OpDelay:
				if op.Delay < 0 {
					return fmt.Errorf("traffic: proc %d op %d: negative delay", p, i)
				}
			case OpFlush:
			case OpPhase:
				if op.Arg < 0 || op.Arg >= len(w.StaticPhases) {
					return fmt.Errorf("traffic: proc %d op %d: phase %d outside %d static phases", p, i, op.Arg, len(w.StaticPhases))
				}
			default:
				return fmt.Errorf("traffic: proc %d op %d: unknown kind %d", p, i, int(op.Kind))
			}
		}
	}
	for i, ph := range w.StaticPhases {
		if ph.Ports() != w.N {
			return fmt.Errorf("traffic: static phase %d spans %d ports, want %d", i, ph.Ports(), w.N)
		}
	}
	return nil
}

// MessageCount returns the total number of sends across all programs.
func (w *Workload) MessageCount() int {
	n := 0
	for _, prog := range w.Programs {
		for _, op := range prog.Ops {
			if op.Kind == OpSend || op.Kind == OpSendWait {
				n++
			}
		}
	}
	return n
}

// TotalBytes returns the sum of all message sizes.
func (w *Workload) TotalBytes() int64 {
	var n int64
	for _, prog := range w.Programs {
		for _, op := range prog.Ops {
			if op.Kind == OpSend || op.Kind == OpSendWait {
				n += int64(op.Bytes)
			}
		}
	}
	return n
}

// ConnSet returns the working set of the whole workload: every (src, dst)
// pair that carries at least one message.
func (w *Workload) ConnSet() *topology.WorkingSet {
	ws := topology.NewWorkingSet(w.N)
	for p, prog := range w.Programs {
		for _, op := range prog.Ops {
			if op.Kind == OpSend || op.Kind == OpSendWait {
				ws.Add(topology.Conn{Src: p, Dst: op.Dst})
			}
		}
	}
	return ws
}

// Concat joins workloads into one multi-phase program: every processor runs
// its phase-0 ops, then a FLUSH + phase hint, then its phase-1 ops, and so
// on. All inputs must span the same processor count. The static phases are
// the inputs' union working sets in order, so the result carries exactly
// the knowledge a compiler would emit for the phased program.
func Concat(name string, wls ...*Workload) *Workload {
	if len(wls) == 0 {
		panic("traffic: Concat needs at least one workload")
	}
	n := wls[0].N
	out := &Workload{Name: name, N: n, Programs: make([]Program, n)}
	for i, wl := range wls {
		if wl.N != n {
			panic(fmt.Sprintf("traffic: Concat mixes %d and %d processors", n, wl.N))
		}
		out.StaticPhases = append(out.StaticPhases, wl.ConnSet())
		for p := range wl.Programs {
			ops := out.Programs[p].Ops
			if i > 0 {
				ops = append(ops, Flush())
			}
			ops = append(ops, Phase(i))
			for _, op := range wl.Programs[p].Ops {
				// Strip the inputs' own phase directives; the combined
				// program gets fresh ones.
				if op.Kind == OpFlush || op.Kind == OpPhase {
					continue
				}
				ops = append(ops, op)
			}
			out.Programs[p] = Program{Ops: ops}
		}
	}
	return out
}

// Skewed builds a demand-skewed single-phase workload, the canonical planner
// input: every processor p sends msgs messages of the given size to each
// partner (p+shift) mod n, except the first shift, which receives factor×
// msgs — a hot permutation riding over light background shifts. Sends are
// interleaved round by round so hot and cold traffic contend throughout the
// run. StaticPhases carries the full working set, so the workload is valid
// for preload and hybrid modes; with len(shifts) above the TDM frame size K
// the demand cannot be pinned in one group and planning decides what the
// registers are spent on.
func Skewed(name string, n, bytes, msgs, factor int, shifts []int) *Workload {
	if n < 2 || bytes <= 0 || msgs <= 0 || factor < 1 || len(shifts) == 0 {
		panic(fmt.Sprintf("traffic: invalid skewed workload n=%d bytes=%d msgs=%d factor=%d shifts=%v",
			n, bytes, msgs, factor, shifts))
	}
	for _, s := range shifts {
		if s%n == 0 {
			panic(fmt.Sprintf("traffic: skewed shift %d is a self-loop at n=%d", s, n))
		}
	}
	wl := &Workload{Name: name, N: n, Programs: make([]Program, n)}
	for p := 0; p < n; p++ {
		var ops []Op
		for m := 0; m < msgs; m++ {
			for i, s := range shifts {
				dst := (p + s) % n
				reps := 1
				if i == 0 {
					reps = factor
				}
				for r := 0; r < reps; r++ {
					ops = append(ops, Send(dst, bytes))
				}
			}
		}
		wl.Programs[p] = Program{Ops: ops}
	}
	wl.StaticPhases = []*topology.WorkingSet{wl.ConnSet()}
	return wl
}
