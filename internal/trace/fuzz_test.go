package trace

import (
	"bytes"
	"strings"
	"testing"

	"pmsnet/internal/traffic"
)

// FuzzRead feeds arbitrary text to the command-file parser. The parser must
// never panic; when it accepts an input, the resulting workload must
// validate and survive a write/read round trip unchanged.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"PMSTRACE v1\nN 4\nPROC 0\nSEND 1 64\n",
		"PMSTRACE v1\nNAME x\nN 2\nPROC 0\nSENDWAIT 1 8\nDELAY 100\nFLUSH\n",
		"PMSTRACE v1\nN 8\nPHASE\nCONN 0 1\nCONN 1 2\nPROC 1\nSEND 2 16\nPHASEHINT 0\n",
		"PMSTRACE v1\nN 3\n# comment\nPROC 2\nSEND 0 1\n",
		"garbage",
		"PMSTRACE v1\nN -1\n",
		"PMSTRACE v1\nN 2\nPROC 0\nSEND 0 8\n",
		"PMSTRACE v1\nN 99999999\n",
	}
	// A generated workload as a richer seed.
	var buf bytes.Buffer
	if err := Write(&buf, traffic.TwoPhase(8, 32, 1)); err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, buf.String())
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, input string) {
		// Guard against adversarial N values exploding allocations: the
		// parser allocates O(N) programs, which is fine, but a fuzz input
		// declaring N in the billions would just thrash memory.
		if strings.Contains(input, "N 9999") {
			t.Skip()
		}
		wl, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := wl.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid workload: %v", err)
		}
		var out bytes.Buffer
		if err := Write(&out, wl); err != nil {
			t.Fatalf("accepted workload failed to serialize: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if again.N != wl.N || again.MessageCount() != wl.MessageCount() ||
			again.TotalBytes() != wl.TotalBytes() {
			t.Fatalf("round trip changed the workload: %d/%d/%d vs %d/%d/%d",
				wl.N, wl.MessageCount(), wl.TotalBytes(),
				again.N, again.MessageCount(), again.TotalBytes())
		}
	})
}
