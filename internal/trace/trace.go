// Package trace serializes workloads as text command files.
//
// The paper's simulator drives each processor from "a command file that
// defines the type and sequence of communications that occur" (§5). This
// package defines that file format for the reproduction: a single text
// document holding one command section per processor plus the statically
// known communication phases a compiler would emit.
//
// Format (line oriented, '#' starts a comment):
//
//	PMSTRACE v1
//	NAME two-phase/128B
//	SPEC two-phase:bytes=128   # generator spec, when registry-built (optional)
//	N 128
//	PHASE                 # static phase 0 (optional, repeatable)
//	CONN 0 1
//	CONN 1 2
//	PROC 0                # program for processor 0
//	SEND 1 128            # enqueue 128 bytes to processor 1
//	SENDWAIT 2 64         # blocking send: wait for delivery
//	DELAY 500             # 500 ns of compute
//	FLUSH                 # flush dynamic connections
//	PHASEHINT 1           # entering static phase 1
//	PROC 1
//	...
//
// Sections may appear in any order except the header; every processor not
// given a PROC section has an empty program.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pmsnet/internal/sim"
	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
)

const header = "PMSTRACE v1"

// Write serializes a workload. The workload must validate.
func Write(w io.Writer, wl *traffic.Workload) error {
	if err := wl.Validate(); err != nil {
		return fmt.Errorf("trace: refusing to write invalid workload: %w", err)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, header)
	if wl.Name != "" {
		fmt.Fprintf(bw, "NAME %s\n", wl.Name)
	}
	if wl.Spec != "" {
		fmt.Fprintf(bw, "SPEC %s\n", wl.Spec)
	}
	fmt.Fprintf(bw, "N %d\n", wl.N)
	for _, ph := range wl.StaticPhases {
		fmt.Fprintln(bw, "PHASE")
		for _, c := range ph.Conns() {
			fmt.Fprintf(bw, "CONN %d %d\n", c.Src, c.Dst)
		}
	}
	for p, prog := range wl.Programs {
		if len(prog.Ops) == 0 {
			continue
		}
		fmt.Fprintf(bw, "PROC %d\n", p)
		for _, op := range prog.Ops {
			switch op.Kind {
			case traffic.OpSend:
				fmt.Fprintf(bw, "SEND %d %d\n", op.Dst, op.Bytes)
			case traffic.OpSendWait:
				fmt.Fprintf(bw, "SENDWAIT %d %d\n", op.Dst, op.Bytes)
			case traffic.OpDelay:
				fmt.Fprintf(bw, "DELAY %d\n", int64(op.Delay))
			case traffic.OpFlush:
				fmt.Fprintln(bw, "FLUSH")
			case traffic.OpPhase:
				fmt.Fprintf(bw, "PHASEHINT %d\n", op.Arg)
			default:
				return fmt.Errorf("trace: unknown op kind %d", int(op.Kind))
			}
		}
	}
	return bw.Flush()
}

// Read parses a command file into a workload and validates it.
func Read(r io.Reader) (*traffic.Workload, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0

	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = strings.TrimSpace(line[:i])
			}
			if line == "" {
				continue
			}
			return line, true
		}
		return "", false
	}

	errf := func(format string, args ...any) error {
		return fmt.Errorf("trace: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	line, ok := next()
	if !ok || line != header {
		return nil, errf("missing %q header", header)
	}

	wl := &traffic.Workload{N: -1}
	curProc := -1
	var curPhase *topology.WorkingSet

	ensureN := func() error {
		if wl.N <= 0 {
			return errf("N must be declared before this directive")
		}
		return nil
	}

	for {
		line, ok := next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		dir := strings.ToUpper(fields[0])
		args := fields[1:]

		atoi := func(s string) (int, error) {
			v, err := strconv.Atoi(s)
			if err != nil {
				return 0, errf("bad integer %q", s)
			}
			return v, nil
		}

		switch dir {
		case "NAME":
			if len(args) != 1 {
				return nil, errf("NAME takes one token")
			}
			wl.Name = args[0]
		case "SPEC":
			if len(args) != 1 {
				return nil, errf("SPEC takes one token")
			}
			wl.Spec = args[0]
		case "N":
			if len(args) != 1 {
				return nil, errf("N takes one integer")
			}
			v, err := atoi(args[0])
			if err != nil {
				return nil, err
			}
			if v <= 0 {
				return nil, errf("N must be positive, got %d", v)
			}
			wl.N = v
			wl.Programs = make([]traffic.Program, v)
		case "PHASE":
			if err := ensureN(); err != nil {
				return nil, err
			}
			curPhase = topology.NewWorkingSet(wl.N)
			wl.StaticPhases = append(wl.StaticPhases, curPhase)
			curProc = -1
		case "CONN":
			if curPhase == nil {
				return nil, errf("CONN outside a PHASE section")
			}
			if len(args) != 2 {
				return nil, errf("CONN takes two integers")
			}
			s, err := atoi(args[0])
			if err != nil {
				return nil, err
			}
			d, err := atoi(args[1])
			if err != nil {
				return nil, err
			}
			if s < 0 || s >= wl.N || d < 0 || d >= wl.N || s == d {
				return nil, errf("bad connection %d->%d", s, d)
			}
			curPhase.Add(topology.Conn{Src: s, Dst: d})
		case "PROC":
			if err := ensureN(); err != nil {
				return nil, err
			}
			if len(args) != 1 {
				return nil, errf("PROC takes one integer")
			}
			p, err := atoi(args[0])
			if err != nil {
				return nil, err
			}
			if p < 0 || p >= wl.N {
				return nil, errf("processor %d outside [0,%d)", p, wl.N)
			}
			curProc = p
			curPhase = nil
		case "SEND", "SENDWAIT", "DELAY", "FLUSH", "PHASEHINT":
			if curProc < 0 {
				return nil, errf("%s outside a PROC section", dir)
			}
			var op traffic.Op
			switch dir {
			case "SEND", "SENDWAIT":
				if len(args) != 2 {
					return nil, errf("%s takes destination and size", dir)
				}
				d, err := atoi(args[0])
				if err != nil {
					return nil, err
				}
				b, err := atoi(args[1])
				if err != nil {
					return nil, err
				}
				if dir == "SEND" {
					op = traffic.Send(d, b)
				} else {
					op = traffic.SendWait(d, b)
				}
			case "DELAY":
				if len(args) != 1 {
					return nil, errf("DELAY takes nanoseconds")
				}
				ns, err := atoi(args[0])
				if err != nil {
					return nil, err
				}
				op = traffic.Delay(sim.Time(ns))
			case "FLUSH":
				if len(args) != 0 {
					return nil, errf("FLUSH takes no arguments")
				}
				op = traffic.Flush()
			case "PHASEHINT":
				if len(args) != 1 {
					return nil, errf("PHASEHINT takes a phase index")
				}
				i, err := atoi(args[0])
				if err != nil {
					return nil, err
				}
				op = traffic.Phase(i)
			}
			wl.Programs[curProc].Ops = append(wl.Programs[curProc].Ops, op)
		default:
			return nil, errf("unknown directive %q", dir)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if wl.N <= 0 {
		return nil, fmt.Errorf("trace: file declares no N")
	}
	if err := wl.Validate(); err != nil {
		return nil, fmt.Errorf("trace: parsed workload invalid: %w", err)
	}
	return wl, nil
}
