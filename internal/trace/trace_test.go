package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
)

func roundTrip(t *testing.T, wl *traffic.Workload) *traffic.Workload {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, wl); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v\nfile:\n%s", err, buf.String())
	}
	return got
}

func assertEqualWorkloads(t *testing.T, a, b *traffic.Workload) {
	t.Helper()
	if a.Name != b.Name || a.N != b.N {
		t.Fatalf("header mismatch: %q/%d vs %q/%d", a.Name, a.N, b.Name, b.N)
	}
	if len(a.Programs) != len(b.Programs) {
		t.Fatalf("program count %d vs %d", len(a.Programs), len(b.Programs))
	}
	for p := range a.Programs {
		ao, bo := a.Programs[p].Ops, b.Programs[p].Ops
		if len(ao) != len(bo) {
			t.Fatalf("proc %d: %d ops vs %d", p, len(ao), len(bo))
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("proc %d op %d: %+v vs %+v", p, i, ao[i], bo[i])
			}
		}
	}
	if len(a.StaticPhases) != len(b.StaticPhases) {
		t.Fatalf("phase count %d vs %d", len(a.StaticPhases), len(b.StaticPhases))
	}
	for i := range a.StaticPhases {
		if !a.StaticPhases[i].Matrix().Equal(b.StaticPhases[i].Matrix()) {
			t.Fatalf("phase %d differs", i)
		}
	}
}

func TestRoundTripAllGenerators(t *testing.T) {
	workloads := []*traffic.Workload{
		traffic.Scatter(16, 64),
		traffic.OrderedMesh(16, 128, 2),
		traffic.RandomMesh(16, 8, 3, 7),
		traffic.AllToAll(8, 32),
		traffic.TwoPhase(16, 256, 3),
		traffic.Mix(16, 64, 5, 0.85, 50, 9),
	}
	for _, wl := range workloads {
		t.Run(wl.Name, func(t *testing.T) {
			assertEqualWorkloads(t, wl, roundTrip(t, wl))
		})
	}
}

func TestRoundTripDelayAndEmptyPrograms(t *testing.T) {
	wl := &traffic.Workload{
		Name: "custom",
		N:    4,
		Programs: []traffic.Program{
			{Ops: []traffic.Op{traffic.Send(1, 8), traffic.Delay(500), traffic.Flush(), traffic.Send(2, 16)}},
			{}, // silent processor
			{Ops: []traffic.Op{traffic.Delay(100)}},
			{},
		},
	}
	assertEqualWorkloads(t, wl, roundTrip(t, wl))
}

func TestWriteRejectsInvalidWorkload(t *testing.T) {
	bad := &traffic.Workload{Name: "bad", N: 2, Programs: []traffic.Program{
		{Ops: []traffic.Op{traffic.Send(0, 8)}}, {}, // self-send
	}}
	var buf bytes.Buffer
	if err := Write(&buf, bad); err == nil {
		t.Fatal("Write should reject an invalid workload")
	}
}

func TestReadCommentsAndBlankLines(t *testing.T) {
	src := `PMSTRACE v1
# a comment
NAME demo

N 3
PROC 0
SEND 1 64   # trailing comment
DELAY 10
`
	wl, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if wl.Name != "demo" || wl.N != 3 {
		t.Fatalf("header parsed wrong: %+v", wl)
	}
	if len(wl.Programs[0].Ops) != 2 {
		t.Fatalf("ops = %v", wl.Programs[0].Ops)
	}
}

func TestReadPhaseSections(t *testing.T) {
	src := `PMSTRACE v1
N 4
PHASE
CONN 0 1
CONN 1 2
PHASE
CONN 2 3
PROC 0
SEND 1 8
PHASEHINT 1
`
	wl, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.StaticPhases) != 2 {
		t.Fatalf("phases = %d, want 2", len(wl.StaticPhases))
	}
	if !wl.StaticPhases[0].Contains(topology.Conn{Src: 0, Dst: 1}) ||
		!wl.StaticPhases[1].Contains(topology.Conn{Src: 2, Dst: 3}) {
		t.Fatal("phase contents wrong")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"missing header":       "N 4\n",
		"no N":                 "PMSTRACE v1\nNAME x\n",
		"proc before N":        "PMSTRACE v1\nPROC 0\n",
		"phase before N":       "PMSTRACE v1\nPHASE\n",
		"send outside proc":    "PMSTRACE v1\nN 2\nSEND 1 8\n",
		"conn outside phase":   "PMSTRACE v1\nN 2\nCONN 0 1\n",
		"bad proc index":       "PMSTRACE v1\nN 2\nPROC 5\n",
		"bad send args":        "PMSTRACE v1\nN 2\nPROC 0\nSEND 1\n",
		"bad integer":          "PMSTRACE v1\nN 2\nPROC 0\nSEND x 8\n",
		"self connection":      "PMSTRACE v1\nN 2\nPHASE\nCONN 1 1\n",
		"out-of-range conn":    "PMSTRACE v1\nN 2\nPHASE\nCONN 0 5\n",
		"unknown directive":    "PMSTRACE v1\nN 2\nWIBBLE\n",
		"negative N":           "PMSTRACE v1\nN -3\n",
		"self-send (validate)": "PMSTRACE v1\nN 2\nPROC 0\nSEND 0 8\n",
		"flush with args":      "PMSTRACE v1\nN 2\nPROC 0\nFLUSH now\n",
		"phasehint no phases":  "PMSTRACE v1\nN 2\nPROC 0\nPHASEHINT 0\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestQuickRoundTripRandomMix(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := 4 + int(rawN)%28
		wl := traffic.Mix(n, 16, 6, 0.5, 0, seed)
		var buf bytes.Buffer
		if err := Write(&buf, wl); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.N != wl.N || got.MessageCount() != wl.MessageCount() || got.TotalBytes() != wl.TotalBytes() {
			return false
		}
		return got.ConnSet().Matrix().Equal(wl.ConnSet().Matrix())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripPreservesSpec: the SPEC line carries the generator spec of
// every registry-built workload through the trace format (and with it
// Workload.Hash, which fingerprints the serialization).
func TestRoundTripPreservesSpec(t *testing.T) {
	for _, name := range traffic.Names() {
		t.Run(name, func(t *testing.T) {
			wl, err := traffic.Generate(name, 16, 7)
			if err != nil {
				t.Fatal(err)
			}
			if wl.Spec == "" {
				t.Fatal("registry-built workload has no spec")
			}
			got := roundTrip(t, wl)
			if got.Spec != wl.Spec {
				t.Fatalf("spec %q round-tripped as %q", wl.Spec, got.Spec)
			}
			assertEqualWorkloads(t, wl, got)
		})
	}
}
