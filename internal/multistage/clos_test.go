package multistage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmsnet/internal/bitmat"
)

func TestNewClosValidation(t *testing.T) {
	for _, bad := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		if _, err := NewClos(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("NewClos%v should fail", bad)
		}
	}
	c, err := NewClos(4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ports() != 32 || c.Leaves() != 8 || c.Spines() != 4 || c.PortsPerLeaf() != 4 {
		t.Fatalf("geometry wrong: %+v", c)
	}
	if !c.Rearrangeable() {
		t.Fatal("m=n clos is rearrangeable")
	}
	under, _ := NewClos(4, 3, 8)
	if under.Rearrangeable() {
		t.Fatal("m<n clos is not rearrangeable")
	}
}

func TestClosRoutesIdentity(t *testing.T) {
	c, _ := NewClos(4, 4, 4)
	cfg := bitmat.Identity(16)
	r, err := c.Route(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 16; u++ {
		if r.Eval(u) != u {
			t.Fatalf("Eval(%d) = %d", u, r.Eval(u))
		}
		if r.Spine(u) < 0 {
			t.Fatalf("port %d unassigned", u)
		}
	}
}

func TestClosRejectsOverDegreeDemand(t *testing.T) {
	// 2 spines but a leaf sending on 3 ports: needs 3 spines.
	c, _ := NewClos(4, 2, 4)
	cfg := bitmat.NewSquare(16)
	cfg.Set(0, 4)
	cfg.Set(1, 8)
	cfg.Set(2, 12)
	if _, err := c.Route(cfg); err == nil {
		t.Fatal("over-degree demand should fail with too few spines")
	}
	// The same demand fits when spread across leaves.
	spread := bitmat.NewSquare(16)
	spread.Set(0, 4)
	spread.Set(5, 8)
	spread.Set(10, 12)
	if _, err := c.Route(spread); err != nil {
		t.Fatalf("degree-1 demand should route: %v", err)
	}
}

func TestClosRejectsBadConfigs(t *testing.T) {
	c, _ := NewClos(4, 4, 4)
	if _, err := c.Route(bitmat.NewSquare(8)); err == nil {
		t.Error("wrong shape should fail")
	}
	bad := bitmat.NewSquare(16)
	bad.Set(0, 1)
	bad.Set(2, 1)
	if _, err := c.Route(bad); err == nil {
		t.Error("non-permutation should fail")
	}
}

func TestClosEvalPanics(t *testing.T) {
	c, _ := NewClos(2, 2, 2)
	r, _ := c.Route(bitmat.Identity(4))
	for i, fn := range []func(){
		func() { r.Eval(-1) },
		func() { r.Spine(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestQuickClosTheorem: with m >= n every permutation routes and validates —
// Clos's rearrangeability theorem, exercised over random geometries and
// permutations.
func TestQuickClosTheorem(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		r := 1 + rng.Intn(8)
		m := n + rng.Intn(3) // m >= n
		c, err := NewClos(n, m, r)
		if err != nil {
			return false
		}
		total := c.Ports()
		perm := rng.Perm(total)
		for i := range perm {
			if rng.Float64() < 0.3 {
				perm[i] = -1
			}
		}
		cfg := bitmat.FromPermutation(perm)
		route, err := c.Route(cfg)
		if err != nil {
			return false
		}
		if route.Validate() != nil {
			return false
		}
		for u, v := range perm {
			if route.Eval(u) != v && !(v == -1 && route.Eval(u) == -1) {
				return false
			}
			if v >= 0 && route.Spine(u) < 0 {
				return false
			}
			if v == -1 && route.Spine(u) != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickClosUsesMinimalSpines: the edge coloring never uses more colors
// than the demand's maximum leaf degree.
func TestQuickClosUsesMinimalSpines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, _ := NewClos(4, 4, 4)
		perm := rng.Perm(16)
		for i := range perm {
			if rng.Float64() < 0.5 {
				perm[i] = -1
			}
		}
		cfg := bitmat.FromPermutation(perm)
		route, err := c.Route(cfg)
		if err != nil {
			return false
		}
		// Demand degree.
		inDeg := make([]int, 4)
		outDeg := make([]int, 4)
		delta := 0
		for u, v := range perm {
			if v < 0 {
				continue
			}
			inDeg[u/4]++
			outDeg[v/4]++
		}
		for l := 0; l < 4; l++ {
			if inDeg[l] > delta {
				delta = inDeg[l]
			}
			if outDeg[l] > delta {
				delta = outDeg[l]
			}
		}
		maxSpine := -1
		for u := range perm {
			if s := route.Spine(u); s > maxSpine {
				maxSpine = s
			}
		}
		return maxSpine+1 <= delta || (delta == 0 && maxSpine == -1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
