package multistage

import (
	"fmt"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/topology"
)

// DecomposeRealizable splits a working set into configurations that each
// satisfy a fabric's realizability oracle, by first-fit: a connection joins
// the first configuration that stays realizable with it, opening a new
// configuration otherwise. The union of the result equals the working set.
//
// Because a blocking fabric realizes fewer permutations than a crossbar, the
// result can need more configurations than the crossbar's optimal (the
// working set's degree) — quantifying the extra multiplexing degree a
// predictive multiplexed switch pays on that fabric. fabricName labels errors
// ("omega", "clos", ...).
func DecomposeRealizable(ws *topology.WorkingSet, ports int, fabricName string, canRealize func(*bitmat.Matrix) bool) ([]*bitmat.Matrix, error) {
	if ws.Ports() != ports {
		return nil, fmt.Errorf("multistage: working set spans %d ports, %s has %d", ws.Ports(), fabricName, ports)
	}
	var configs []*bitmat.Matrix
	for _, c := range ws.Conns() {
		placed := false
		for _, cfg := range configs {
			if cfg.RowAny(c.Src) || cfg.ColAny(c.Dst) {
				continue
			}
			cfg.Set(c.Src, c.Dst)
			if canRealize(cfg) {
				placed = true
				break
			}
			cfg.Clear(c.Src, c.Dst)
		}
		if !placed {
			cfg := bitmat.NewSquare(ports)
			cfg.Set(c.Src, c.Dst)
			if !canRealize(cfg) {
				// A single connection is always realizable; anything else
				// is a wiring-model bug.
				panic(fmt.Sprintf("multistage: single connection %v unroutable", c))
			}
			configs = append(configs, cfg)
		}
	}
	return configs, nil
}

// Weighted is one term of a Birkhoff–von-Neumann-style decomposition: a
// conflict-free partial permutation carrying an integer weight.
type Weighted struct {
	// Weight is the term's coefficient in slots (always positive).
	Weight int64
	// Config is the partial permutation.
	Config *bitmat.Matrix
}

// DecomposeBvN splits a non-negative integer n×n demand matrix — read
// through the accessor `at` — into weighted partial permutations that sum
// exactly to the input:
//
//	demand(u,v) = Σ over terms t with t.Config[u,v]=1 of t.Weight
//
// This is the integer analogue of the Birkhoff–von-Neumann theorem extended
// to arbitrary (non-doubly-stochastic) matrices via partial permutations:
// each round extracts a maximum-cardinality matching over the remaining
// support (Kuhn's augmenting paths, deterministic adjacency order: heavier
// columns first, ties to the lower column index) weighted by the smallest
// remaining entry it touches. Every round zeroes at least one entry, so at
// most nnz(demand) terms are produced. The decomposition is deterministic.
func DecomposeBvN(n int, at func(u, v int) int64) ([]Weighted, error) {
	if n <= 0 {
		return nil, fmt.Errorf("multistage: invalid matrix size %d", n)
	}
	rem := make([]int64, n*n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			w := at(u, v)
			if w < 0 {
				return nil, fmt.Errorf("multistage: negative demand %d at (%d,%d)", w, u, v)
			}
			rem[u*n+v] = w
		}
	}
	matchOf := make([]int, n) // row -> matched col, -1 if unmatched
	colOf := make([]int, n)   // col -> matched row, -1 if unmatched
	visited := make([]bool, n)
	var augment func(u int) bool
	augment = func(u int) bool {
		// Try columns in deterministic order: heaviest remaining entry
		// first so heavy edges tend to share a term, ties to the lower
		// column index (sortColsByWeight is stable). The candidate list is
		// per call — the recursion below must not clobber it.
		adj := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if rem[u*n+v] > 0 {
				adj = append(adj, v)
			}
		}
		row := rem[u*n : u*n+n]
		sortColsByWeight(adj, row)
		for _, v := range adj {
			if visited[v] {
				continue
			}
			visited[v] = true
			if colOf[v] < 0 || augment(colOf[v]) {
				matchOf[u], colOf[v] = v, u
				return true
			}
		}
		return false
	}
	var terms []Weighted
	for {
		for i := range matchOf {
			matchOf[i], colOf[i] = -1, -1
		}
		size := 0
		for u := 0; u < n; u++ {
			for i := range visited {
				visited[i] = false
			}
			if augment(u) {
				size++
			}
		}
		if size == 0 {
			break
		}
		// The term's weight is the bottleneck entry of the matching, so
		// subtracting it zeroes at least one entry.
		var weight int64
		for u := 0; u < n; u++ {
			if v := matchOf[u]; v >= 0 {
				if w := rem[u*n+v]; weight == 0 || w < weight {
					weight = w
				}
			}
		}
		cfg := bitmat.NewSquare(n)
		for u := 0; u < n; u++ {
			if v := matchOf[u]; v >= 0 {
				cfg.Set(u, v)
				rem[u*n+v] -= weight
			}
		}
		terms = append(terms, Weighted{Weight: weight, Config: cfg})
	}
	return terms, nil
}

// sortColsByWeight orders the candidate columns by decreasing remaining
// weight, ties to the lower index (insertion sort keeps it allocation-free
// and stable; candidate lists are at most the row's degree).
func sortColsByWeight(cols []int, row []int64) {
	for i := 1; i < len(cols); i++ {
		c := cols[i]
		j := i - 1
		for j >= 0 && row[cols[j]] < row[c] {
			cols[j+1] = cols[j]
			j--
		}
		cols[j+1] = c
	}
}
