package multistage

import (
	"fmt"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/topology"
)

// DecomposeRealizable splits a working set into configurations that each
// satisfy a fabric's realizability oracle, by first-fit: a connection joins
// the first configuration that stays realizable with it, opening a new
// configuration otherwise. The union of the result equals the working set.
//
// Because a blocking fabric realizes fewer permutations than a crossbar, the
// result can need more configurations than the crossbar's optimal (the
// working set's degree) — quantifying the extra multiplexing degree a
// predictive multiplexed switch pays on that fabric. fabricName labels errors
// ("omega", "clos", ...).
func DecomposeRealizable(ws *topology.WorkingSet, ports int, fabricName string, canRealize func(*bitmat.Matrix) bool) ([]*bitmat.Matrix, error) {
	if ws.Ports() != ports {
		return nil, fmt.Errorf("multistage: working set spans %d ports, %s has %d", ws.Ports(), fabricName, ports)
	}
	var configs []*bitmat.Matrix
	for _, c := range ws.Conns() {
		placed := false
		for _, cfg := range configs {
			if cfg.RowAny(c.Src) || cfg.ColAny(c.Dst) {
				continue
			}
			cfg.Set(c.Src, c.Dst)
			if canRealize(cfg) {
				placed = true
				break
			}
			cfg.Clear(c.Src, c.Dst)
		}
		if !placed {
			cfg := bitmat.NewSquare(ports)
			cfg.Set(c.Src, c.Dst)
			if !canRealize(cfg) {
				// A single connection is always realizable; anything else
				// is a wiring-model bug.
				panic(fmt.Sprintf("multistage: single connection %v unroutable", c))
			}
			configs = append(configs, cfg)
		}
	}
	return configs, nil
}
