package multistage

import (
	"math/rand"
	"testing"
)

// checkBvN asserts the decomposition invariants for a demand matrix: every
// term is a conflict-free partial permutation with positive weight, and the
// weighted sum of the terms reproduces the input exactly.
func checkBvN(t *testing.T, n int, demand []int64, terms []Weighted) {
	t.Helper()
	sum := make([]int64, n*n)
	for ti, term := range terms {
		if term.Weight <= 0 {
			t.Fatalf("term %d has non-positive weight %d", ti, term.Weight)
		}
		if term.Config == nil || term.Config.Rows() != n || term.Config.Cols() != n {
			t.Fatalf("term %d has malformed config", ti)
		}
		if !term.Config.IsPartialPermutation() {
			t.Fatalf("term %d is not a conflict-free partial permutation", ti)
		}
		if term.Config.IsZero() {
			t.Fatalf("term %d is empty", ti)
		}
		term.Config.Ones(func(u, v int) bool {
			sum[u*n+v] += term.Weight
			return true
		})
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if sum[u*n+v] != demand[u*n+v] {
				t.Fatalf("entry (%d,%d): terms sum to %d, demand is %d",
					u, v, sum[u*n+v], demand[u*n+v])
			}
		}
	}
}

func TestDecomposeBvNProperty(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		demand func(n int) []int64
	}{
		{"empty", 4, func(n int) []int64 { return make([]int64, n*n) }},
		{"uniform permutation", 8, func(n int) []int64 {
			d := make([]int64, n*n)
			for u := 0; u < n; u++ {
				d[u*n+(u+1)%n] = 7
			}
			return d
		}},
		{"skewed shifts", 16, func(n int) []int64 {
			d := make([]int64, n*n)
			for u := 0; u < n; u++ {
				d[u*n+(u+1)%n] = 64 // hot
				d[u*n+(u+2)%n] = 3
				d[u*n+(u+5)%n] = 1
			}
			return d
		}},
		{"dense random", 12, func(n int) []int64 {
			rng := rand.New(rand.NewSource(42))
			d := make([]int64, n*n)
			for i := range d {
				if rng.Intn(3) == 0 {
					d[i] = int64(rng.Intn(100))
				}
			}
			return d
		}},
		{"single hot entry", 6, func(n int) []int64 {
			d := make([]int64, n*n)
			d[0*n+3] = 1_000_000
			return d
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.demand(tc.n)
			terms, err := DecomposeBvN(tc.n, func(u, v int) int64 { return d[u*tc.n+v] })
			if err != nil {
				t.Fatal(err)
			}
			checkBvN(t, tc.n, d, terms)
			// Term count is bounded by the support size.
			nnz := 0
			for _, w := range d {
				if w > 0 {
					nnz++
				}
			}
			if len(terms) > nnz {
				t.Fatalf("%d terms exceed support size %d", len(terms), nnz)
			}
		})
	}
}

func TestDecomposeBvNDeterministic(t *testing.T) {
	n := 10
	rng := rand.New(rand.NewSource(7))
	d := make([]int64, n*n)
	for i := range d {
		if rng.Intn(2) == 0 {
			d[i] = int64(rng.Intn(50))
		}
	}
	at := func(u, v int) int64 { return d[u*n+v] }
	a, err := DecomposeBvN(n, at)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecomposeBvN(n, at)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("term counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Weight != b[i].Weight || !a[i].Config.Equal(b[i].Config) {
			t.Fatalf("term %d differs between identical runs", i)
		}
	}
}

func TestDecomposeBvNErrors(t *testing.T) {
	if _, err := DecomposeBvN(0, func(u, v int) int64 { return 0 }); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := DecomposeBvN(4, func(u, v int) int64 { return -1 }); err == nil {
		t.Error("negative demand should error")
	}
}
