// Package multistage models multistage interconnection fabrics — the
// "fabrics with limited permutation capabilities" of paper §4, and the
// extension direction named in its conclusions ("we are also working on
// extending the design to switching fabrics other than crossbars").
//
// Two classic fabrics are implemented:
//
//   - Omega: log2(N) stages of 2x2 switches behind perfect-shuffle wiring.
//     Self-routing and cheap, but blocking: only a fraction of the partial
//     permutations a crossbar realizes are Omega-realizable. Configurations
//     destined for an Omega fabric must respect these constraints — which is
//     exactly where TDM helps: a working set that does not fit one Omega
//     pass decomposes into several Omega-realizable configurations
//     multiplexed over time (DecomposeOmega).
//
//   - Benes: the 2·log2(N)−1-stage rearrangeably non-blocking network. The
//     looping algorithm routes any full or partial permutation, so a Benes
//     fabric accepts every crossbar configuration at about twice the stage
//     count.
package multistage

import (
	"fmt"
	"math/bits"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/topology"
)

// Omega is an N-port Omega network: k = log2(N) identical stages, each a
// perfect shuffle followed by N/2 two-by-two switches.
type Omega struct {
	n      int
	stages int
}

// NewOmega builds an Omega network; n must be a power of two, at least 2.
func NewOmega(n int) (*Omega, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("multistage: omega size %d must be a power of two >= 2", n)
	}
	return &Omega{n: n, stages: bits.Len(uint(n)) - 1}, nil
}

// Ports returns N.
func (o *Omega) Ports() int { return o.n }

// Stages returns log2(N).
func (o *Omega) Stages() int { return o.stages }

// SwitchesPerStage returns N/2.
func (o *Omega) SwitchesPerStage() int { return o.n / 2 }

// Leaves returns the number of input-stage 2x2 switch elements, N/2 — the
// natural sharding grain of the fabric's input side.
func (o *Omega) Leaves() int { return o.n / 2 }

// Settings holds one switch state per stage and switch: false = through,
// true = cross. Only switches on active paths are meaningful; the Route
// simulation treats unconstrained switches as through.
type Settings [][]bool

// shuffle is the perfect-shuffle permutation: rotate the log2(N)-bit address
// left by one.
func (o *Omega) shuffle(pos int) int {
	return ((pos << 1) | (pos >> (o.stages - 1))) & (o.n - 1)
}

// Route computes switch settings realizing the configuration (a partial
// permutation matrix) and the blocked connections, if any. Omega networks
// are self-routing: input i's path to output j is unique, so Route fails
// exactly when two paths need the same switch output line or force one
// switch into both states at once. Connections are admitted in ascending
// input order; on conflict the later connection is reported blocked and the
// routing fails.
func (o *Omega) Route(cfg *bitmat.Matrix) (Settings, error) {
	if cfg.Rows() != o.n || cfg.Cols() != o.n {
		return nil, fmt.Errorf("multistage: configuration is %dx%d, omega has %d ports", cfg.Rows(), cfg.Cols(), o.n)
	}
	if !cfg.IsPartialPermutation() {
		return nil, fmt.Errorf("multistage: configuration is not a partial permutation")
	}
	settings := make(Settings, o.stages)
	constrained := make([][]bool, o.stages)
	for s := range settings {
		settings[s] = make([]bool, o.n/2)
		constrained[s] = make([]bool, o.n/2)
	}
	for u := 0; u < o.n; u++ {
		v := cfg.FirstInRow(u)
		if v < 0 {
			continue
		}
		if err := o.routeOne(settings, constrained, u, v); err != nil {
			return nil, err
		}
	}
	return settings, nil
}

// routeOne threads the unique path from input u to output v, fixing switch
// states along it.
func (o *Omega) routeOne(settings, constrained [][]bool, u, v int) error {
	pos := u
	for s := 0; s < o.stages; s++ {
		pos = o.shuffle(pos)
		sw := pos / 2
		inLine := pos & 1
		// Destination-tag routing: stage s consumes the destination's bit
		// (stages-1-s); the path must exit the switch on that line.
		outLine := (v >> (o.stages - 1 - s)) & 1
		cross := inLine != outLine
		if constrained[s][sw] && settings[s][sw] != cross {
			return fmt.Errorf("multistage: connection %d->%d blocked at stage %d switch %d", u, v, s, sw)
		}
		settings[s][sw] = cross
		constrained[s][sw] = true
		pos = sw*2 + outLine
	}
	if pos != v {
		// The destination-tag construction lands on v by construction; a
		// mismatch means the wiring model is broken.
		panic(fmt.Sprintf("multistage: path from %d ended at %d, want %d", u, pos, v))
	}
	return nil
}

// CanRealize reports whether the configuration is Omega-realizable.
func (o *Omega) CanRealize(cfg *bitmat.Matrix) bool {
	_, err := o.Route(cfg)
	return err == nil
}

// Eval traces input u through the settings and returns the output it
// reaches. Unconstrained switches behave as through. It panics on
// out-of-range inputs or malformed settings; it is the verification path
// for Route.
func (o *Omega) Eval(settings Settings, u int) int {
	if u < 0 || u >= o.n {
		panic(fmt.Sprintf("multistage: input %d outside [0,%d)", u, o.n))
	}
	if len(settings) != o.stages {
		panic(fmt.Sprintf("multistage: settings have %d stages, want %d", len(settings), o.stages))
	}
	pos := u
	for s := 0; s < o.stages; s++ {
		pos = o.shuffle(pos)
		sw := pos / 2
		if len(settings[s]) != o.n/2 {
			panic(fmt.Sprintf("multistage: stage %d has %d switches, want %d", s, len(settings[s]), o.n/2))
		}
		line := pos & 1
		if settings[s][sw] {
			line ^= 1
		}
		pos = sw*2 + line
	}
	return pos
}

// DecomposeOmega splits a working set into Omega-realizable configurations —
// DecomposeRealizable under the Omega network's realizability oracle.
func DecomposeOmega(ws *topology.WorkingSet, o *Omega) ([]*bitmat.Matrix, error) {
	return DecomposeRealizable(ws, o.n, "omega", o.CanRealize)
}
