package multistage

import (
	"testing"

	"pmsnet/internal/bitmat"
)

// FuzzClosRoute feeds arbitrary (n, m, r) geometries and partial
// permutations to the Kempe-chain router and checks the two contracts the
// TDM fabric backends rely on: Route never fails on a rearrangeable network
// (m >= n, Clos's theorem), and every route it does produce uses each
// leaf<->spine link at most once (ClosRoute.Validate).
func FuzzClosRoute(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(4), []byte{0x01, 0x42, 0x10})
	f.Add(uint8(2), uint8(1), uint8(3), []byte{0xff, 0x00, 0x7f})
	f.Add(uint8(3), uint8(5), uint8(2), []byte("kempe chains"))
	f.Fuzz(func(t *testing.T, nb, mb, rb uint8, tape []byte) {
		n, m, r := 1+int(nb%6), 1+int(mb%8), 1+int(rb%6)
		c, err := NewClos(n, m, r)
		if err != nil {
			t.Fatalf("NewClos(%d,%d,%d): %v", n, m, r, err)
		}
		total := c.Ports()

		// Build a partial permutation from the tape: each byte pair proposes
		// a (src, dst) connection, skipped when either side is taken.
		cfg := bitmat.NewSquare(total)
		srcUsed := make([]bool, total)
		dstUsed := make([]bool, total)
		for i := 0; i+1 < len(tape); i += 2 {
			u, v := int(tape[i])%total, int(tape[i+1])%total
			if srcUsed[u] || dstUsed[v] {
				continue
			}
			srcUsed[u], dstUsed[v] = true, true
			cfg.Set(u, v)
		}

		route, err := c.Route(cfg)
		if err != nil {
			if c.Rearrangeable() {
				t.Fatalf("Route failed on rearrangeable clos(%d,%d,%d): %v", n, m, r, err)
			}
			return // blocking geometry may legitimately reject the demand
		}
		if err := route.Validate(); err != nil {
			t.Fatalf("routed configuration violates link capacity on clos(%d,%d,%d): %v", n, m, r, err)
		}
		// The route must cover exactly the configured connections.
		for u := 0; u < total; u++ {
			v := cfg.FirstInRow(u)
			if s := route.Spine(u); (v >= 0) != (s >= 0) {
				t.Fatalf("port %d: configured dst %d but spine %d", u, v, s)
			}
		}
	})
}

// FuzzDecompose feeds arbitrary demand matrices to the BvN decomposition and
// checks its library contract: the result is a set of conflict-free partial
// permutation sub-matrices whose weighted sum reproduces the input exactly,
// with positive weights and no more terms than nonzero entries.
func FuzzDecompose(f *testing.F) {
	f.Add(uint8(4), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(8), []byte{0xff, 0x00, 0x10, 0x42})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(6), []byte("birkhoff von neumann"))
	f.Fuzz(func(t *testing.T, nb uint8, tape []byte) {
		n := 1 + int(nb%12)
		d := make([]int64, n*n)
		for i, b := range tape {
			if i >= len(d) {
				break
			}
			d[i] = int64(b)
		}
		terms, err := DecomposeBvN(n, func(u, v int) int64 { return d[u*n+v] })
		if err != nil {
			t.Fatalf("DecomposeBvN(n=%d): %v", n, err)
		}
		sum := make([]int64, n*n)
		nnz := 0
		for _, w := range d {
			if w > 0 {
				nnz++
			}
		}
		if len(terms) > nnz {
			t.Fatalf("%d terms exceed support size %d", len(terms), nnz)
		}
		for ti, term := range terms {
			if term.Weight <= 0 {
				t.Fatalf("term %d: non-positive weight %d", ti, term.Weight)
			}
			if !term.Config.IsPartialPermutation() || term.Config.IsZero() {
				t.Fatalf("term %d: not a nonempty conflict-free partial permutation", ti)
			}
			term.Config.Ones(func(u, v int) bool {
				sum[u*n+v] += term.Weight
				return true
			})
		}
		for i := range d {
			if sum[i] != d[i] {
				t.Fatalf("entry %d: terms sum to %d, demand is %d", i, sum[i], d[i])
			}
		}
	})
}
