package multistage

import (
	"fmt"
	"math/bits"

	"pmsnet/internal/bitmat"
)

// Benes is an N-port Benes network: 2·log2(N)−1 stages of 2x2 switches,
// rearrangeably non-blocking — the looping algorithm routes any permutation,
// so a Benes fabric accepts every crossbar configuration.
type Benes struct {
	n int
}

// NewBenes builds a Benes network; n must be a power of two, at least 2.
func NewBenes(n int) (*Benes, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("multistage: benes size %d must be a power of two >= 2", n)
	}
	return &Benes{n: n}, nil
}

// Ports returns N.
func (b *Benes) Ports() int { return b.n }

// Stages returns 2·log2(N)−1.
func (b *Benes) Stages() int { return 2*(bits.Len(uint(b.n))-1) - 1 }

// Leaves returns the number of input-stage 2x2 switch elements, N/2 — the
// natural sharding grain of the fabric's input side.
func (b *Benes) Leaves() int { return b.n / 2 }

// BenesRoute is a routed Benes network: the recursive switch settings
// produced by the looping algorithm. Eval traces an input to its output.
type BenesRoute struct {
	n int
	// n == 2: the single switch state.
	cross bool
	// n > 2: input/output column switch states (n/2 each; true = cross) and
	// the two half-size subnetworks.
	inCross, outCross []bool
	upper, lower      *BenesRoute
}

// Route runs the looping algorithm on a configuration (a partial
// permutation matrix). Unused inputs are routed to unused outputs to
// complete the permutation; Benes networks are rearrangeably non-blocking,
// so Route never fails for a valid configuration.
func (b *Benes) Route(cfg *bitmat.Matrix) (*BenesRoute, error) {
	if cfg.Rows() != b.n || cfg.Cols() != b.n {
		return nil, fmt.Errorf("multistage: configuration is %dx%d, benes has %d ports", cfg.Rows(), cfg.Cols(), b.n)
	}
	if !cfg.IsPartialPermutation() {
		return nil, fmt.Errorf("multistage: configuration is not a partial permutation")
	}
	perm := completePermutation(cfg)
	return routeBenes(perm), nil
}

// completePermutation extends a partial permutation matrix to a full
// permutation by pairing unused inputs with unused outputs in ascending
// order.
func completePermutation(cfg *bitmat.Matrix) []int {
	n := cfg.Rows()
	perm := make([]int, n)
	usedOut := make([]bool, n)
	for i := 0; i < n; i++ {
		perm[i] = cfg.FirstInRow(i)
		if perm[i] >= 0 {
			usedOut[perm[i]] = true
		}
	}
	free := make([]int, 0, n)
	for j := 0; j < n; j++ {
		if !usedOut[j] {
			free = append(free, j)
		}
	}
	next := 0
	for i := 0; i < n; i++ {
		if perm[i] < 0 {
			perm[i] = free[next]
			next++
		}
	}
	return perm
}

// routeBenes recursively routes a full permutation with the looping
// algorithm.
func routeBenes(perm []int) *BenesRoute {
	n := len(perm)
	if n == 2 {
		return &BenesRoute{n: 2, cross: perm[0] == 1}
	}

	iperm := make([]int, n)
	for i, j := range perm {
		iperm[j] = i
	}

	// assign[i] is the subnetwork (0 = upper, 1 = lower) carrying input i's
	// connection. The looping constraints: the two inputs of an input
	// switch use different subnetworks, and the two outputs of an output
	// switch are fed by different subnetworks.
	const unassigned = -1
	assign := make([]int, n)
	for i := range assign {
		assign[i] = unassigned
	}
	for start := 0; start < n; start++ {
		i, s := start, 0
		for assign[i] == unassigned {
			assign[i] = s
			// The partner output of perm[i] must come through the other
			// subnetwork.
			ip := iperm[perm[i]^1]
			if assign[ip] == unassigned {
				assign[ip] = 1 - s
			}
			// ip's input-switch partner must take the other subnetwork
			// from ip, i.e. s again; continue the loop there.
			i = ip ^ 1
			s = 1 - assign[ip]
		}
	}

	half := n / 2
	r := &BenesRoute{
		n:        n,
		inCross:  make([]bool, half),
		outCross: make([]bool, half),
	}
	upperPerm := make([]int, half)
	lowerPerm := make([]int, half)
	for k := 0; k < half; k++ {
		top, bottom := 2*k, 2*k+1
		// Input switch k: through sends its top input to the upper
		// subnetwork; cross swaps.
		r.inCross[k] = assign[top] == 1
		for _, i := range []int{top, bottom} {
			j := perm[i]
			if assign[i] == 0 {
				upperPerm[k] = j / 2
			} else {
				lowerPerm[k] = j / 2
			}
		}
	}
	for m := 0; m < half; m++ {
		// Output switch m: through takes its top input (from the upper
		// subnetwork) to output 2m; cross swaps. Output 2m comes from the
		// upper subnetwork iff its source input is assigned upper.
		r.outCross[m] = assign[iperm[2*m]] == 1
	}
	r.upper = routeBenes(upperPerm)
	r.lower = routeBenes(lowerPerm)
	return r
}

// Eval traces input u through the routed network and returns its output.
func (r *BenesRoute) Eval(u int) int {
	if u < 0 || u >= r.n {
		panic(fmt.Sprintf("multistage: input %d outside [0,%d)", u, r.n))
	}
	if r.n == 2 {
		if r.cross {
			return u ^ 1
		}
		return u
	}
	k := u / 2
	top := u&1 == 0
	goesUpper := top != r.inCross[k]
	var m int
	var fromUpper bool
	if goesUpper {
		m = r.upper.Eval(k)
		fromUpper = true
	} else {
		m = r.lower.Eval(k)
		fromUpper = false
	}
	// Output switch m: upper feeds its top input, lower its bottom input.
	if fromUpper != r.outCross[m] {
		return 2 * m
	}
	return 2*m + 1
}

// Realizes reports whether the routed network delivers every connection of
// the configuration.
func (r *BenesRoute) Realizes(cfg *bitmat.Matrix) bool {
	ok := true
	cfg.Ones(func(u, v int) bool {
		if r.Eval(u) != v {
			ok = false
			return false
		}
		return true
	})
	return ok
}
