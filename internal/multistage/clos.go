package multistage

import (
	"fmt"

	"pmsnet/internal/bitmat"
)

// Clos is a three-stage Clos network — the building block of fat-tree
// organizations (the third fabric family paper §4 names). r ingress leaf
// switches of n ports each feed m middle (spine) switches; every leaf has
// exactly one link to every spine in each direction, so a spine can carry at
// most one connection from each input leaf and at most one to each output
// leaf.
//
// Routing a configuration is therefore an edge coloring of the leaf-to-leaf
// demand multigraph with m colors (the spine indices). By the bipartite
// multigraph edge-coloring theorem the chromatic index equals the maximum
// leaf degree, which is at most n — so the network is rearrangeably
// non-blocking exactly when m >= n (Clos's theorem), and Route never fails
// in that regime.
type Clos struct {
	n, m, r int
}

// NewClos builds a Clos network with r leaves of n ports and m spines.
func NewClos(n, m, r int) (*Clos, error) {
	if n < 1 || m < 1 || r < 1 {
		return nil, fmt.Errorf("multistage: invalid clos(n=%d, m=%d, r=%d)", n, m, r)
	}
	return &Clos{n: n, m: m, r: r}, nil
}

// DefaultClos builds the canonical Clos factoring of a port count: r leaves
// of n ports each with m = n spines, where n is the smallest divisor of
// ports satisfying n*n >= ports (the balanced square-root split). m = n makes
// the network rearrangeably non-blocking at the minimum spine count (Clos's
// theorem), so Route never fails — the fat-tree building block paper §4
// names, at the cheapest non-blocking configuration.
func DefaultClos(ports int) (*Clos, error) {
	if ports < 2 {
		return nil, fmt.Errorf("multistage: clos needs at least 2 ports, got %d", ports)
	}
	for n := 1; n <= ports; n++ {
		if ports%n == 0 && n*n >= ports {
			return NewClos(n, n, ports/n)
		}
	}
	// ports divides itself, so the loop always terminates at n = ports.
	panic(fmt.Sprintf("multistage: no clos factoring for %d ports", ports))
}

// Ports returns the total port count n*r.
func (c *Clos) Ports() int { return c.n * c.r }

// Leaves returns r.
func (c *Clos) Leaves() int { return c.r }

// Spines returns m.
func (c *Clos) Spines() int { return c.m }

// PortsPerLeaf returns n.
func (c *Clos) PortsPerLeaf() int { return c.n }

// Rearrangeable reports whether the network can realize every permutation
// (m >= n).
func (c *Clos) Rearrangeable() bool { return c.m >= c.n }

// leafOf returns the leaf switch of a port.
func (c *Clos) leafOf(port int) int { return port / c.n }

// ClosRoute assigns each connection of a configuration to a spine.
type ClosRoute struct {
	clos *Clos
	// spineOf[u] is the spine carrying input port u's connection, or -1.
	spineOf []int
	// dstOf[u] is input port u's output port, or -1.
	dstOf []int
}

// Route assigns spines to every connection of the configuration (a partial
// permutation matrix over n*r ports). It fails when the demand's maximum
// leaf degree exceeds the spine count — the configuration then needs TDM
// slots, exactly like an over-degree working set on the crossbar.
func (c *Clos) Route(cfg *bitmat.Matrix) (*ClosRoute, error) {
	total := c.Ports()
	if cfg.Rows() != total || cfg.Cols() != total {
		return nil, fmt.Errorf("multistage: configuration is %dx%d, clos has %d ports", cfg.Rows(), cfg.Cols(), total)
	}
	if !cfg.IsPartialPermutation() {
		return nil, fmt.Errorf("multistage: configuration is not a partial permutation")
	}

	// Demand multigraph edges between input leaves and output leaves.
	type edge struct{ u, v int } // ports
	var edges []edge
	inDeg := make([]int, c.r)
	outDeg := make([]int, c.r)
	for u := 0; u < total; u++ {
		v := cfg.FirstInRow(u)
		if v < 0 {
			continue
		}
		edges = append(edges, edge{u, v})
		inDeg[c.leafOf(u)]++
		outDeg[c.leafOf(v)]++
	}
	delta := 0
	for l := 0; l < c.r; l++ {
		if inDeg[l] > delta {
			delta = inDeg[l]
		}
		if outDeg[l] > delta {
			delta = outDeg[l]
		}
	}
	if delta > c.m {
		return nil, fmt.Errorf("multistage: demand needs %d spines, clos has %d", delta, c.m)
	}

	// Kempe-chain edge coloring of the leaf multigraph with m colors.
	// colorAtIn[l][s] / colorAtOut[l][s] hold the edge index using spine s
	// at input/output leaf l, or -1.
	colorAtIn := make([][]int, c.r)
	colorAtOut := make([][]int, c.r)
	for l := 0; l < c.r; l++ {
		colorAtIn[l] = newFilled(c.m, -1)
		colorAtOut[l] = newFilled(c.m, -1)
	}
	spineOfEdge := newFilled(len(edges), -1)

	for ei, e := range edges {
		il, ol := c.leafOf(e.u), c.leafOf(e.v)
		a := firstFree(colorAtIn[il])
		b := firstFree(colorAtOut[ol])
		if a == -1 || b == -1 {
			// Impossible: degrees are bounded by delta <= m.
			panic(fmt.Sprintf("multistage: no free spine for %d->%d", e.u, e.v))
		}
		if colorAtOut[ol][a] == -1 {
			colorAtIn[il][a] = ei
			colorAtOut[ol][a] = ei
			spineOfEdge[ei] = a
			continue
		}
		// Swap spines a and b along the alternating chain from ol.
		leaves := func(ei int) (int, int) {
			return c.leafOf(edges[ei].u), c.leafOf(edges[ei].v)
		}
		flipClosChain(colorAtIn, colorAtOut, spineOfEdge, leaves, ol, a, b)
		if colorAtOut[ol][a] != -1 || colorAtIn[il][a] != -1 {
			panic(fmt.Sprintf("multistage: chain flip failed to free spine %d", a))
		}
		colorAtIn[il][a] = ei
		colorAtOut[ol][a] = ei
		spineOfEdge[ei] = a
	}

	route := &ClosRoute{
		clos:    c,
		spineOf: newFilled(total, -1),
		dstOf:   newFilled(total, -1),
	}
	for ei, e := range edges {
		route.spineOf[e.u] = spineOfEdge[ei]
		route.dstOf[e.u] = e.v
	}
	return route, nil
}

// flipClosChain swaps spines a and b along the maximal alternating chain of
// edges starting at output leaf start's a-colored edge. Mirrors
// flipAlternatingPath, but on the multigraph (edges identified by index).
func flipClosChain(colorAtIn, colorAtOut [][]int, spineOfEdge []int, leaves func(int) (int, int), start, a, b int) {
	type step struct{ ei, color int }
	var chain []step
	other := func(c int) int {
		if c == a {
			return b
		}
		return a
	}
	ol, color := start, a
	for {
		ei := colorAtOut[ol][color]
		if ei == -1 {
			break
		}
		chain = append(chain, step{ei, color})
		il, _ := leaves(ei)
		color = other(color)
		ei2 := colorAtIn[il][color]
		if ei2 == -1 {
			break
		}
		chain = append(chain, step{ei2, color})
		_, ol = leaves(ei2)
		color = other(color)
	}
	for _, s := range chain {
		il, olx := leaves(s.ei)
		colorAtIn[il][s.color] = -1
		colorAtOut[olx][s.color] = -1
	}
	for _, s := range chain {
		il, olx := leaves(s.ei)
		nc := other(s.color)
		colorAtIn[il][nc] = s.ei
		colorAtOut[olx][nc] = s.ei
		spineOfEdge[s.ei] = nc
	}
}

// Spine returns the spine carrying input port u's connection, or -1.
func (r *ClosRoute) Spine(u int) int {
	if u < 0 || u >= len(r.spineOf) {
		panic(fmt.Sprintf("multistage: port %d outside [0,%d)", u, len(r.spineOf)))
	}
	return r.spineOf[u]
}

// Eval returns the output port input u reaches, or -1 if unconnected.
func (r *ClosRoute) Eval(u int) int {
	if u < 0 || u >= len(r.dstOf) {
		panic(fmt.Sprintf("multistage: port %d outside [0,%d)", u, len(r.dstOf)))
	}
	return r.dstOf[u]
}

// Validate checks the structural constraints of the routing: every spine
// carries at most one connection per input leaf and one per output leaf.
func (r *ClosRoute) Validate() error {
	c := r.clos
	inUse := make(map[[2]int]int)  // (in-leaf, spine) -> port
	outUse := make(map[[2]int]int) // (out-leaf, spine) -> port
	for u, s := range r.spineOf {
		if s < 0 {
			continue
		}
		if s >= c.m {
			return fmt.Errorf("multistage: port %d assigned nonexistent spine %d", u, s)
		}
		v := r.dstOf[u]
		ik := [2]int{c.leafOf(u), s}
		if prev, ok := inUse[ik]; ok {
			return fmt.Errorf("multistage: ports %d and %d share the leaf %d -> spine %d link", prev, u, ik[0], s)
		}
		inUse[ik] = u
		ok2 := [2]int{c.leafOf(v), s}
		if prev, ok := outUse[ok2]; ok {
			return fmt.Errorf("multistage: outputs of ports %d and %d share the spine %d -> leaf %d link", prev, u, s, ok2[0])
		}
		outUse[ok2] = u
	}
	return nil
}

// newFilled returns an n-slot int slice filled with v.
func newFilled(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// firstFree returns the first index holding -1, or -1.
func firstFree(slots []int) int {
	for i, occ := range slots {
		if occ == -1 {
			return i
		}
	}
	return -1
}
