package multistage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/topology"
)

func TestNewOmegaValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		if _, err := NewOmega(n); err == nil {
			t.Errorf("NewOmega(%d) should fail", n)
		}
	}
	o, err := NewOmega(8)
	if err != nil {
		t.Fatal(err)
	}
	if o.Ports() != 8 || o.Stages() != 3 || o.SwitchesPerStage() != 4 {
		t.Fatalf("omega geometry wrong: %+v", o)
	}
}

func TestOmegaRouteIdentity(t *testing.T) {
	o, _ := NewOmega(8)
	cfg := bitmat.Identity(8)
	settings, err := o.Route(cfg)
	if err != nil {
		t.Fatalf("identity should be omega-realizable: %v", err)
	}
	for u := 0; u < 8; u++ {
		if got := o.Eval(settings, u); got != u {
			t.Fatalf("Eval(%d) = %d, want identity", u, got)
		}
	}
}

func TestOmegaSingleConnectionAlwaysRoutable(t *testing.T) {
	o, _ := NewOmega(16)
	for u := 0; u < 16; u++ {
		for v := 0; v < 16; v++ {
			cfg := bitmat.NewSquare(16)
			cfg.Set(u, v)
			settings, err := o.Route(cfg)
			if err != nil {
				t.Fatalf("single connection %d->%d unroutable: %v", u, v, err)
			}
			if got := o.Eval(settings, u); got != v {
				t.Fatalf("Eval(%d) = %d, want %d", u, got, v)
			}
		}
	}
}

func TestOmegaIsBlocking(t *testing.T) {
	// An Omega network realizes at most 2^(switches) of the N! permutations,
	// so some full permutations must be blocked. Verify by counting over
	// all 4! permutations of a 4-port network: some realizable, some not.
	o, _ := NewOmega(4)
	perms := [][]int{}
	var gen func(cur []int, used int)
	gen = func(cur []int, used int) {
		if len(cur) == 4 {
			cp := make([]int, 4)
			copy(cp, cur)
			perms = append(perms, cp)
			return
		}
		for v := 0; v < 4; v++ {
			if used&(1<<v) == 0 {
				gen(append(cur, v), used|1<<v)
			}
		}
	}
	gen(nil, 0)
	if len(perms) != 24 {
		t.Fatalf("generated %d permutations", len(perms))
	}
	realizable := 0
	for _, p := range perms {
		if o.CanRealize(bitmat.FromPermutation(p)) {
			realizable++
		}
	}
	// A 4-port omega has 4 switches -> at most 16 distinct mappings.
	if realizable == 0 || realizable >= 24 {
		t.Fatalf("realizable = %d of 24: an omega must realize some but not all permutations", realizable)
	}
	if realizable > 16 {
		t.Fatalf("realizable = %d exceeds the 2^4 switch-setting bound", realizable)
	}
}

func TestOmegaRouteRejectsBadConfigs(t *testing.T) {
	o, _ := NewOmega(8)
	if _, err := o.Route(bitmat.NewSquare(4)); err == nil {
		t.Error("wrong shape should fail")
	}
	bad := bitmat.NewSquare(8)
	bad.Set(0, 1)
	bad.Set(2, 1)
	if _, err := o.Route(bad); err == nil {
		t.Error("non-permutation should fail")
	}
}

func TestOmegaEvalPanics(t *testing.T) {
	o, _ := NewOmega(4)
	settings, _ := o.Route(bitmat.NewSquare(4))
	for i, fn := range []func(){
		func() { o.Eval(settings, -1) },
		func() { o.Eval(settings, 4) },
		func() { o.Eval(Settings{}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestQuickOmegaRouteMatchesEval(t *testing.T) {
	o, _ := NewOmega(16)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random sparse partial permutation: route if possible and verify.
		cfg := bitmat.NewSquare(16)
		perm := rng.Perm(16)
		for i, v := range perm {
			if rng.Float64() < 0.4 && i != v {
				if !cfg.RowAny(i) && !cfg.ColAny(v) {
					cfg.Set(i, v)
				}
			}
		}
		settings, err := o.Route(cfg)
		if err != nil {
			return true // blocked is a legal outcome; realizability tested elsewhere
		}
		ok := true
		cfg.Ones(func(u, v int) bool {
			if o.Eval(settings, u) != v {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewBenesValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12} {
		if _, err := NewBenes(n); err == nil {
			t.Errorf("NewBenes(%d) should fail", n)
		}
	}
	b, err := NewBenes(8)
	if err != nil {
		t.Fatal(err)
	}
	if b.Ports() != 8 || b.Stages() != 5 {
		t.Fatalf("benes geometry wrong: %+v", b)
	}
	if b2, _ := NewBenes(2); b2.Stages() != 1 {
		t.Fatal("2-port benes is a single switch")
	}
}

func TestBenesRoutesEveryPermutation8(t *testing.T) {
	// Exhaustive over all 8!/(nothing) is 40320 — too many; use all 4! on a
	// 4-port network exhaustively, then random checks at 8.
	b4, _ := NewBenes(4)
	var gen func(cur []int, used int)
	count := 0
	gen = func(cur []int, used int) {
		if len(cur) == 4 {
			cfg := bitmat.FromPermutation(cur)
			r, err := b4.Route(cfg)
			if err != nil {
				t.Fatalf("benes failed to route %v: %v", cur, err)
			}
			if !r.Realizes(cfg) {
				t.Fatalf("benes misrouted %v", cur)
			}
			count++
			return
		}
		for v := 0; v < 4; v++ {
			if used&(1<<v) == 0 {
				gen(append(cur, v), used|1<<v)
			}
		}
	}
	gen(nil, 0)
	if count != 24 {
		t.Fatalf("checked %d permutations, want 24", count)
	}
}

func TestQuickBenesRearrangeable(t *testing.T) {
	// Any permutation on any power-of-two size up to 128 must route.
	f := func(seed int64, rawK uint8) bool {
		k := 1 + int(rawK)%7 // 2..128 ports
		n := 1 << k
		b, err := NewBenes(n)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		cfg := bitmat.FromPermutation(rng.Perm(n))
		r, err := b.Route(cfg)
		if err != nil {
			return false
		}
		return r.Realizes(cfg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBenesPartialPermutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(4)) // 4..32
		b, _ := NewBenes(n)
		perm := rng.Perm(n)
		for i := range perm {
			if rng.Float64() < 0.5 {
				perm[i] = -1
			}
		}
		cfg := bitmat.FromPermutation(perm)
		r, err := b.Route(cfg)
		if err != nil {
			return false
		}
		return r.Realizes(cfg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBenesRejectsBadConfigs(t *testing.T) {
	b, _ := NewBenes(8)
	if _, err := b.Route(bitmat.NewSquare(4)); err == nil {
		t.Error("wrong shape should fail")
	}
	bad := bitmat.NewSquare(8)
	bad.Set(0, 1)
	bad.Set(2, 1)
	if _, err := b.Route(bad); err == nil {
		t.Error("non-permutation should fail")
	}
}

func TestBenesEvalPanics(t *testing.T) {
	b, _ := NewBenes(4)
	r, _ := b.Route(bitmat.Identity(4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Eval(9)
}

func TestDecomposeOmegaCoversAndRealizes(t *testing.T) {
	o, _ := NewOmega(16)
	rng := rand.New(rand.NewSource(5))
	ws := topology.NewWorkingSet(16)
	for ws.Len() < 40 {
		u, v := rng.Intn(16), rng.Intn(16)
		if u != v {
			ws.Add(topology.Conn{Src: u, Dst: v})
		}
	}
	configs, err := DecomposeOmega(ws, o)
	if err != nil {
		t.Fatal(err)
	}
	union := ws.Matrix()
	union.Reset()
	total := 0
	for i, cfg := range configs {
		if !o.CanRealize(cfg) {
			t.Fatalf("config %d not omega-realizable", i)
		}
		total += cfg.Count()
		union.Or(cfg)
	}
	if total != ws.Len() || !union.Equal(ws.Matrix()) {
		t.Fatal("omega decomposition must exactly cover the working set")
	}
	// The omega's blocking constraints can only increase the configuration
	// count over the crossbar optimum.
	if len(configs) < len(topology.Decompose(ws)) {
		t.Fatalf("omega decomposition (%d) cannot beat the crossbar optimum (%d)",
			len(configs), len(topology.Decompose(ws)))
	}
}

func TestDecomposeOmegaNeedsMoreSlotsThanCrossbar(t *testing.T) {
	// Take a full permutation the omega cannot realize in one pass (one
	// must exist: TestOmegaIsBlocking). A crossbar caches it in a single
	// configuration; the omega needs at least two TDM slots — the extra
	// multiplexing degree a blocking fabric pays.
	const n = 8
	o, _ := NewOmega(n)
	var blocked []int
	var gen func(cur []int, used int)
	gen = func(cur []int, used int) {
		if blocked != nil {
			return
		}
		if len(cur) == n {
			cfg := bitmat.FromPermutation(cur)
			fixedPoint := false
			for i, v := range cur {
				if i == v {
					fixedPoint = true
					break
				}
			}
			if !fixedPoint && !o.CanRealize(cfg) {
				blocked = append([]int(nil), cur...)
			}
			return
		}
		for v := 0; v < n; v++ {
			if used&(1<<v) == 0 {
				gen(append(cur, v), used|1<<v)
			}
		}
	}
	gen(nil, 0)
	if blocked == nil {
		t.Fatal("no omega-blocked derangement found: the fabric model is too permissive")
	}
	ws := topology.NewWorkingSet(n)
	for u, v := range blocked {
		ws.Add(topology.Conn{Src: u, Dst: v})
	}
	crossbar := topology.Decompose(ws)
	if len(crossbar) != 1 {
		t.Fatalf("a permutation should be one crossbar config, got %d", len(crossbar))
	}
	omega, err := DecomposeOmega(ws, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(omega) < 2 {
		t.Fatalf("the blocked permutation must need at least 2 omega configs, got %d", len(omega))
	}
	t.Logf("blocked permutation %v: crossbar 1 config, omega %d configs", blocked, len(omega))
}

func TestDecomposeOmegaShapeMismatch(t *testing.T) {
	o, _ := NewOmega(8)
	if _, err := DecomposeOmega(topology.NewWorkingSet(4), o); err == nil {
		t.Fatal("port mismatch should error")
	}
}
