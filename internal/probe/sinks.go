package probe

import "pmsnet/internal/sim"

// CounterSink tallies events per kind — the cheapest sink, useful for smoke
// checks ("did this run establish connections?") and for the bit-identity
// tests that attach a probe without otherwise observing the run.
type CounterSink struct {
	counts [KindCount]uint64
}

// NewCounterSink builds an empty counter sink.
func NewCounterSink() *CounterSink { return &CounterSink{} }

// Handle implements Sink.
func (s *CounterSink) Handle(ev Event) {
	if ev.Kind < KindCount {
		s.counts[ev.Kind]++
	}
}

// Count returns the number of events of one kind seen so far.
func (s *CounterSink) Count(k Kind) uint64 {
	if k >= KindCount {
		return 0
	}
	return s.counts[k]
}

// Total returns the number of events seen across all kinds.
func (s *CounterSink) Total() uint64 {
	var t uint64
	for _, c := range s.counts {
		t += c
	}
	return t
}

// Sample is one bucket of a TimelineSink: the slot-utilization and
// queue-depth curves of the interval [Start, Start+Interval).
type Sample struct {
	// Start is the bucket's start time.
	Start sim.Time
	// Slots and SlotsUsed count slot boundaries in the bucket and how many
	// of them carried payload; Utilization is their ratio (0 when no slot
	// boundary fell into the bucket).
	Slots, SlotsUsed int
	Utilization      float64
	// Created and Delivered count message lifecycle events in the bucket.
	Created, Delivered int
	// QueueDepth is the number of in-flight messages (created but not yet
	// delivered) at the end of the bucket; MaxDepth is the bucket's peak.
	QueueDepth, MaxDepth int
}

// TimelineSink is the time-series sampler: it buckets the event stream into
// fixed intervals and produces slot-utilization and queue-depth curves.
// Events must arrive in nondecreasing timestamp order, which the simulation
// engine guarantees.
type TimelineSink struct {
	interval sim.Time
	buckets  []Sample
	depth    int
}

// NewTimelineSink builds a sampler with the given bucket width (must be
// positive).
func NewTimelineSink(interval sim.Time) *TimelineSink {
	if interval <= 0 {
		interval = sim.Microsecond
	}
	return &TimelineSink{interval: interval}
}

// Interval returns the bucket width.
func (s *TimelineSink) Interval() sim.Time { return s.interval }

// bucket returns the bucket for time t, extending the series as needed. New
// buckets inherit the running queue depth so idle intervals still sample it.
func (s *TimelineSink) bucket(t sim.Time) *Sample {
	i := int(t / s.interval)
	for len(s.buckets) <= i {
		b := Sample{Start: sim.Time(len(s.buckets)) * s.interval}
		b.QueueDepth = s.depth
		b.MaxDepth = s.depth
		s.buckets = append(s.buckets, b)
	}
	return &s.buckets[i]
}

// Handle implements Sink.
func (s *TimelineSink) Handle(ev Event) {
	switch ev.Kind {
	case SlotStart:
		b := s.bucket(ev.At)
		b.Slots++
	case SlotEnd:
		if ev.Aux != 0 {
			s.bucket(ev.At).SlotsUsed++
		}
	case MsgCreated:
		b := s.bucket(ev.At)
		b.Created++
		s.depth++
		b.QueueDepth = s.depth
		if s.depth > b.MaxDepth {
			b.MaxDepth = s.depth
		}
	case MsgDelivered:
		b := s.bucket(ev.At)
		b.Delivered++
		s.depth--
		b.QueueDepth = s.depth
	}
}

// Samples returns the bucketed curves with Utilization filled in. The
// returned slice is a copy and safe to keep.
func (s *TimelineSink) Samples() []Sample {
	out := make([]Sample, len(s.buckets))
	copy(out, s.buckets)
	for i := range out {
		if out[i].Slots > 0 {
			out[i].Utilization = float64(out[i].SlotsUsed) / float64(out[i].Slots)
		}
	}
	return out
}
