package probe

import (
	"bufio"
	"fmt"
	"io"

	"pmsnet/internal/sim"
)

// TraceWriter renders the event stream as Chrome trace-event JSON (the
// "JSON Array Format"), loadable in Perfetto / chrome://tracing. One event is
// written per line, so the output doubles as JSONL with array brackets.
//
// Layout: everything runs in one process (pid 1) split across five pseudo
// threads so the viewer groups related activity on one track each:
//
//	tid 1 "slots"        — complete (X) events, one per configured TDM slot
//	tid 2 "scheduler"    — duration (B/E) pairs, one per scheduling pass
//	tid 3 "connections"  — async (b/e) spans keyed "src:dst", establish→release
//	tid 4 "messages"     — async (b/e) spans keyed by message id, create→deliver,
//	                       with instant head-of-queue/injected marks in between
//	tid 5 "faults"       — instant (i) events for fault injection and recovery
//
// Timestamps are microseconds (the format's unit); the simulation's
// nanosecond clock is written with 3 decimal places, so nothing is rounded
// away. Write errors are latched and returned by Close.
type TraceWriter struct {
	bw    *bufio.Writer
	err   error
	wrote bool
}

// Chrome trace pseudo-thread ids.
const (
	tidSlots = 1 + iota
	tidSched
	tidConns
	tidMsgs
	tidFaults
)

// NewTraceWriter starts a trace on w: it writes the opening bracket and the
// process/thread metadata immediately. The caller must Close the writer to
// terminate the JSON array (closing the underlying file, if any, remains the
// caller's job).
func NewTraceWriter(w io.Writer) *TraceWriter {
	t := &TraceWriter{bw: bufio.NewWriter(w)}
	t.raw("[\n")
	t.meta("process_name", 0, `"name":{"args":{"name":"pmsnet"}}`)
	for _, th := range []struct {
		tid  int
		name string
	}{
		{tidSlots, "slots"},
		{tidSched, "scheduler"},
		{tidConns, "connections"},
		{tidMsgs, "messages"},
		{tidFaults, "faults"},
	} {
		t.line(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, th.tid, th.name)
	}
	return t
}

func (t *TraceWriter) raw(s string) {
	if t.err != nil {
		return
	}
	_, t.err = t.bw.WriteString(s)
}

// line writes one JSON event object on its own line, inserting the element
// separator before every object after the first.
func (t *TraceWriter) line(format string, args ...any) {
	if t.err != nil {
		return
	}
	if t.wrote {
		t.raw(",\n")
	}
	t.wrote = true
	_, t.err = fmt.Fprintf(t.bw, format, args...)
}

func (t *TraceWriter) meta(name string, tid int, _ string) {
	t.line(`{"name":%q,"ph":"M","pid":1,"tid":%d,"args":{"name":"pmsnet"}}`, name, tid)
}

// us renders a simulation timestamp in the trace format's microsecond unit.
func us(at sim.Time) string { return fmt.Sprintf("%d.%03d", at/1000, at%1000) }

// Handle implements Sink.
func (t *TraceWriter) Handle(ev Event) {
	switch ev.Kind {
	case SlotStart:
		if ev.Slot < 0 {
			return // no configuration this boundary; nothing occupies the track
		}
		t.line(`{"name":"slot %d","cat":"slot","ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d,"args":{"slot":%d}}`,
			ev.Slot, us(ev.At), us(sim.Time(ev.Aux)), tidSlots, ev.Slot)
	case SlotEnd:
		t.line(`{"name":"slot-used","cat":"slot","ph":"C","ts":%s,"pid":1,"tid":%d,"args":{"used":%d}}`,
			us(ev.At), tidSlots, ev.Aux)
	case SchedPassBegin:
		t.line(`{"name":"pass","cat":"sched","ph":"B","ts":%s,"pid":1,"tid":%d}`,
			us(ev.At), tidSched)
	case SchedPassEnd:
		t.line(`{"name":"pass","cat":"sched","ph":"E","ts":%s,"pid":1,"tid":%d,"args":{"established":%d,"released":%d}}`,
			us(ev.At), tidSched, ev.Aux, ev.ID)
	case ConnEstablished:
		t.line(`{"name":"conn %d->%d","cat":"conn","ph":"b","id":"%d:%d","ts":%s,"pid":1,"tid":%d,"args":{"slot":%d}}`,
			ev.Src, ev.Dst, ev.Src, ev.Dst, us(ev.At), tidConns, ev.Slot)
	case ConnReleased:
		t.line(`{"name":"conn %d->%d","cat":"conn","ph":"e","id":"%d:%d","ts":%s,"pid":1,"tid":%d,"args":{"reason":"released","slot":%d}}`,
			ev.Src, ev.Dst, ev.Src, ev.Dst, us(ev.At), tidConns, ev.Slot)
	case ConnEvicted:
		t.line(`{"name":"conn %d->%d","cat":"conn","ph":"e","id":"%d:%d","ts":%s,"pid":1,"tid":%d,"args":{"reason":"evicted","slots":%d}}`,
			ev.Src, ev.Dst, ev.Src, ev.Dst, us(ev.At), tidConns, ev.Aux)
	case Preload:
		t.line(`{"name":"preload group %d","cat":"sched","ph":"i","s":"t","ts":%s,"pid":1,"tid":%d,"args":{"group":%d,"configs":%d}}`,
			ev.Slot, us(ev.At), tidSched, ev.Slot, ev.Aux)
	case Flush:
		t.line(`{"name":"flush","cat":"sched","ph":"i","s":"t","ts":%s,"pid":1,"tid":%d}`,
			us(ev.At), tidSched)
	case MsgCreated:
		t.line(`{"name":"msg %d","cat":"msg","ph":"b","id":%d,"ts":%s,"pid":1,"tid":%d,"args":{"src":%d,"dst":%d,"bytes":%d}}`,
			ev.ID, ev.ID, us(ev.At), tidMsgs, ev.Src, ev.Dst, ev.Aux)
	case MsgHeadOfQueue:
		t.line(`{"name":"head-of-queue","cat":"msg","ph":"n","id":%d,"ts":%s,"pid":1,"tid":%d,"args":{"src":%d,"dst":%d}}`,
			ev.ID, us(ev.At), tidMsgs, ev.Src, ev.Dst)
	case MsgInjected:
		t.line(`{"name":"injected","cat":"msg","ph":"n","id":%d,"ts":%s,"pid":1,"tid":%d,"args":{"src":%d,"dst":%d}}`,
			ev.ID, us(ev.At), tidMsgs, ev.Src, ev.Dst)
	case MsgDelivered:
		t.line(`{"name":"msg %d","cat":"msg","ph":"e","id":%d,"ts":%s,"pid":1,"tid":%d,"args":{"latency_ns":%d}}`,
			ev.ID, ev.ID, us(ev.At), tidMsgs, ev.Aux)
	case FaultInjected:
		kind := "link-down"
		if ev.ID == 1 {
			kind = "crosspoint-dead"
		}
		t.line(`{"name":%q,"cat":"fault","ph":"i","s":"g","ts":%s,"pid":1,"tid":%d,"args":{"port":%d,"out":%d,"permanent":%d}}`,
			kind, us(ev.At), tidFaults, ev.Src, ev.Dst, ev.Aux)
	case FaultRecovered:
		t.line(`{"name":"link-up","cat":"fault","ph":"i","s":"g","ts":%s,"pid":1,"tid":%d,"args":{"port":%d}}`,
			us(ev.At), tidFaults, ev.Src)
	case SchedWarmPass:
		t.line(`{"name":"warm-dirty-rows","cat":"sched","ph":"C","ts":%s,"pid":1,"tid":%d,"args":{"dirty":%d,"rebuild":%d}}`,
			us(ev.At), tidSched, ev.Aux, 1-ev.ID)
	}
}

// Close terminates the JSON array and flushes buffered output. It returns
// the first write error encountered anywhere in the trace.
func (t *TraceWriter) Close() error {
	t.raw("\n]\n")
	if err := t.bw.Flush(); t.err == nil {
		t.err = err
	}
	return t.err
}
