package probe

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pmsnet/internal/sim"
)

func TestKindStrings(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < KindCount; k++ {
		s := k.String()
		if s == "" || s == "unknown" {
			t.Errorf("Kind(%d) has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("Kind(%d) and Kind(%d) share the name %q", k, prev, s)
		}
		seen[s] = k
	}
	if KindCount.String() != "unknown" {
		t.Errorf("KindCount.String() = %q, want unknown", KindCount.String())
	}
}

func TestNewSkipsNilSinks(t *testing.T) {
	c := NewCounterSink()
	p := New(nil, c, nil)
	p.Emit(Event{Kind: SlotStart})
	p.Emit(Event{Kind: SlotStart})
	p.Emit(Event{Kind: MsgCreated})
	if got := c.Count(SlotStart); got != 2 {
		t.Errorf("Count(SlotStart) = %d, want 2", got)
	}
	if got := c.Total(); got != 3 {
		t.Errorf("Total() = %d, want 3", got)
	}
	if got := c.Count(KindCount); got != 0 {
		t.Errorf("Count(KindCount) = %d, want 0", got)
	}
}

func TestCounterFanout(t *testing.T) {
	a, b := NewCounterSink(), NewCounterSink()
	p := New(a, b)
	p.Emit(Event{Kind: ConnEstablished})
	if a.Count(ConnEstablished) != 1 || b.Count(ConnEstablished) != 1 {
		t.Errorf("fanout missed a sink: a=%d b=%d",
			a.Count(ConnEstablished), b.Count(ConnEstablished))
	}
}

func TestTimelineSinkBuckets(t *testing.T) {
	s := NewTimelineSink(100)
	// Bucket 0: two slots, one used; one message created.
	s.Handle(Event{Kind: SlotStart, At: 0})
	s.Handle(Event{Kind: SlotEnd, At: 0, Aux: 1})
	s.Handle(Event{Kind: SlotStart, At: 50})
	s.Handle(Event{Kind: SlotEnd, At: 50, Aux: 0})
	s.Handle(Event{Kind: MsgCreated, At: 60, ID: 1})
	// Bucket 2 (bucket 1 is idle): message delivered.
	s.Handle(Event{Kind: MsgDelivered, At: 250, ID: 1})

	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("len(Samples()) = %d, want 3", len(got))
	}
	b0 := got[0]
	if b0.Slots != 2 || b0.SlotsUsed != 1 || b0.Utilization != 0.5 {
		t.Errorf("bucket 0 slots=%d used=%d util=%v, want 2/1/0.5",
			b0.Slots, b0.SlotsUsed, b0.Utilization)
	}
	if b0.Created != 1 || b0.QueueDepth != 1 || b0.MaxDepth != 1 {
		t.Errorf("bucket 0 created=%d depth=%d max=%d, want 1/1/1",
			b0.Created, b0.QueueDepth, b0.MaxDepth)
	}
	// The idle bucket inherits the running depth.
	if got[1].QueueDepth != 1 || got[1].Slots != 0 || got[1].Utilization != 0 {
		t.Errorf("idle bucket 1 = %+v, want depth 1, no slots", got[1])
	}
	if got[2].Delivered != 1 || got[2].QueueDepth != 0 {
		t.Errorf("bucket 2 delivered=%d depth=%d, want 1/0", got[2].Delivered, got[2].QueueDepth)
	}
	if got[2].Start != 200 {
		t.Errorf("bucket 2 start = %d, want 200", got[2].Start)
	}
}

func TestTimelineSinkDefaultInterval(t *testing.T) {
	if got := NewTimelineSink(0).Interval(); got != sim.Microsecond {
		t.Errorf("default interval = %d, want %d", got, sim.Microsecond)
	}
}

// emitOneOfEach drives every kind through the writer so the JSON test
// exercises each case arm.
func emitOneOfEach(s Sink) {
	s.Handle(Event{Kind: SlotStart, At: 100, Slot: 3, Aux: 1600})
	s.Handle(Event{Kind: SlotStart, At: 200, Slot: -1}) // idle boundary: no output
	s.Handle(Event{Kind: SlotEnd, At: 100, Slot: 3, Aux: 1})
	s.Handle(Event{Kind: SchedPassBegin, At: 120})
	s.Handle(Event{Kind: SchedPassEnd, At: 120, Aux: 2, ID: 1})
	s.Handle(Event{Kind: ConnEstablished, At: 120, Src: 0, Dst: 5, Slot: 3})
	s.Handle(Event{Kind: ConnReleased, At: 300, Src: 0, Dst: 5, Slot: 3})
	s.Handle(Event{Kind: ConnEvicted, At: 350, Src: 1, Dst: 2, Aux: 4})
	s.Handle(Event{Kind: Preload, At: 0, Slot: 0, Aux: 8})
	s.Handle(Event{Kind: Flush, At: 400})
	s.Handle(Event{Kind: MsgCreated, At: 10, Src: 0, Dst: 5, ID: 7, Aux: 4096})
	s.Handle(Event{Kind: MsgHeadOfQueue, At: 15, Src: 0, Dst: 5, ID: 7})
	s.Handle(Event{Kind: MsgInjected, At: 100, Src: 0, Dst: 5, ID: 7})
	s.Handle(Event{Kind: MsgDelivered, At: 500, Src: 0, Dst: 5, ID: 7, Aux: 490})
	s.Handle(Event{Kind: FaultInjected, At: 600, Src: 2, Dst: -1, ID: 0, Aux: 0})
	s.Handle(Event{Kind: FaultInjected, At: 610, Src: 2, Dst: 3, ID: 1, Aux: 1})
	s.Handle(Event{Kind: FaultRecovered, At: 700, Src: 2})
}

func TestTraceWriterProducesValidJSON(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	emitOneOfEach(w)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	// 6 metadata + 16 event lines (the idle SlotStart is suppressed).
	if len(events) != 22 {
		t.Fatalf("got %d events, want 22", len(events))
	}
	phases := map[string]int{}
	for i, ev := range events {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Errorf("event %d missing %q: %v", i, field, ev)
			}
		}
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if ph != "M" {
			if _, ok := ev["ts"]; !ok {
				t.Errorf("event %d (ph=%s) missing ts", i, ph)
			}
		}
		// Async events require an id.
		if ph == "b" || ph == "e" || ph == "n" {
			if _, ok := ev["id"]; !ok {
				t.Errorf("async event %d missing id: %v", i, ev)
			}
		}
	}
	for _, want := range []struct {
		ph string
		n  int
	}{{"M", 6}, {"X", 1}, {"C", 1}, {"B", 1}, {"E", 1}, {"b", 2}, {"e", 3}, {"n", 2}, {"i", 5}} {
		if phases[want.ph] != want.n {
			t.Errorf("phase %q count = %d, want %d (all: %v)", want.ph, phases[want.ph], want.n, phases)
		}
	}
}

func TestTraceWriterTimestampPrecision(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	w.Handle(Event{Kind: Flush, At: 1234567}) // 1234.567 µs
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !strings.Contains(buf.String(), `"ts":1234.567`) {
		t.Errorf("timestamp not rendered with ns precision:\n%s", buf.String())
	}
}

func TestTraceWriterEmptyTraceIsValid(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 6 { // metadata only
		t.Errorf("got %d events, want 6 metadata events", len(events))
	}
}
