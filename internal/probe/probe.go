// Package probe is the simulation observability layer: a typed event stream
// emitted by the program driver, the connection scheduler and every network
// model, fanned out to pluggable sinks.
//
// The paper's evaluation reasons about *when* things happen inside the switch
// — slot-by-slot crossbar occupancy, scheduler passes, connection
// establishment and eviction — while the metrics package only reports
// end-of-run aggregates. A probe closes that gap without touching the
// results: emission is purely observational, so a run with a probe attached
// is bit-identical to the same run without one.
//
// Design constraints, in priority order:
//
//   - A nil probe must be free on the hot path. Every emission site is
//     guarded by a single pointer check (`if r.probe != nil { ... }`), so the
//     disabled case costs one compare-and-branch and never even constructs
//     the Event value.
//   - Events are small flat structs passed by value; emitting one allocates
//     nothing. Sinks that need to retain events copy what they need.
//   - Sinks are synchronous and run on the simulation goroutine. A probe
//     must therefore not be shared between concurrently running simulations
//     (pmsnet.RunMany rejects configurations with a probe attached).
//
// Note the name: the existing internal/trace package is the PMSTRACE workload
// command-file format; this package is the *runtime* event stream, hence
// "probe". The Chrome trace-event writer (tracewriter.go) bridges the two
// vocabularies: its output is a trace in the Perfetto sense.
package probe

import "pmsnet/internal/sim"

// Kind identifies an event type in the simulation event taxonomy.
type Kind uint8

// The event taxonomy. Field usage per kind is documented on Event.
const (
	// SlotStart fires at a TDM slot boundary when the fabric loads a
	// configuration (or finds none). SlotEnd fires after the slot's
	// transfers have been issued; both carry the same timestamp because the
	// simulation models a slot's data phase as one instantaneous grant.
	SlotStart Kind = iota
	SlotEnd
	// SchedPassBegin/SchedPassEnd bracket one scheduling pass (one SL clock
	// cycle, or one arbitration round in the baseline models). The end event
	// carries the pass's grant counts.
	SchedPassBegin
	SchedPassEnd
	// ConnEstablished/ConnReleased/ConnEvicted are connection lifecycle
	// events: a scheduling pass established or released src→dst, or a
	// predictor/fault handler evicted it out-of-band.
	ConnEstablished
	ConnReleased
	ConnEvicted
	// Preload fires when the preload controller pins a configuration group;
	// Flush when the scheduler executes a compiler FLUSH.
	Preload
	Flush
	// Message lifecycle: created at the SEND op, head-of-queue when it
	// reaches the front of its source NIC's destination queue, injected when
	// its first byte enters the network, delivered when its last byte
	// reaches the destination NIC.
	MsgCreated
	MsgHeadOfQueue
	MsgInjected
	MsgDelivered
	// FaultInjected/FaultRecovered mirror the fault layer: a link going
	// down (or a crosspoint dying) and a link coming back up.
	FaultInjected
	FaultRecovered
	// SchedWarmPass fires once per warm-prepared scheduling pass, between
	// SchedPassBegin and SchedPassEnd: the warm masks were brought up to
	// date incrementally (ID=1, Aux = rows re-evaluated) or rebuilt from
	// scratch (ID=0, Aux=-1).
	SchedWarmPass

	// KindCount is the number of event kinds; sinks may size arrays with it.
	KindCount
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SlotStart:
		return "slot-start"
	case SlotEnd:
		return "slot-end"
	case SchedPassBegin:
		return "sched-pass-begin"
	case SchedPassEnd:
		return "sched-pass-end"
	case ConnEstablished:
		return "conn-established"
	case ConnReleased:
		return "conn-released"
	case ConnEvicted:
		return "conn-evicted"
	case Preload:
		return "preload"
	case Flush:
		return "flush"
	case MsgCreated:
		return "msg-created"
	case MsgHeadOfQueue:
		return "msg-head-of-queue"
	case MsgInjected:
		return "msg-injected"
	case MsgDelivered:
		return "msg-delivered"
	case FaultInjected:
		return "fault-injected"
	case FaultRecovered:
		return "fault-recovered"
	case SchedWarmPass:
		return "sched-warm-pass"
	default:
		return "unknown"
	}
}

// Event is one simulation event. It is a flat value type: emitting one
// allocates nothing, and sinks receive a copy they may keep.
//
// Field usage by kind (unused fields are zero; ports are -1 when absent):
//
//	SlotStart        Slot (TDM slot index, -1 if no slot was configured), Aux (slot duration ns)
//	SlotEnd          Slot, Aux (1 when the slot carried payload, else 0)
//	SchedPassBegin   —
//	SchedPassEnd     Aux (connections established), ID (connections released)
//	ConnEstablished  Src, Dst, Slot
//	ConnReleased     Src, Dst, Slot
//	ConnEvicted      Src, Dst, Aux (slot entries removed)
//	Preload          Slot (configuration group index), Aux (configurations pinned)
//	Flush            —
//	MsgCreated       Src, Dst, ID (message id), Aux (payload bytes)
//	MsgHeadOfQueue   Src, Dst, ID
//	MsgInjected      Src, Dst, ID
//	MsgDelivered     Src, Dst, ID, Aux (latency ns)
//	FaultInjected    Src (port or crossbar input), Dst (crossbar output, -1 for a link fault), ID (0 link, 1 crosspoint), Aux (1 when permanent)
//	FaultRecovered   Src (port)
//	SchedWarmPass    ID (1 incremental, 0 full rebuild), Aux (dirty rows re-evaluated, -1 on rebuild)
type Event struct {
	// At is the simulated timestamp of the event.
	At sim.Time
	// ID carries the message id (message events) or an auxiliary
	// discriminator (fault kind, pass release count).
	ID int64
	// Aux carries the kind-specific scalar documented above.
	Aux int64
	// Src and Dst are crossbar ports; -1 when not applicable.
	Src, Dst int32
	// Slot is the TDM slot or preload-group index; -1 when not applicable.
	Slot int32
	// Kind discriminates the event.
	Kind Kind
}

// Sink consumes events. Handle runs synchronously on the simulation
// goroutine; implementations must not block and must not mutate shared state
// of another running simulation.
type Sink interface {
	Handle(ev Event)
}

// Probe fans events out to its sinks. The zero value is unusable; build one
// with New. Models hold a *Probe that is nil when observability is off and
// guard every emission with a single pointer check.
type Probe struct {
	sinks []Sink
}

// New builds a probe over the given sinks; nil sinks are skipped.
func New(sinks ...Sink) *Probe {
	p := &Probe{}
	for _, s := range sinks {
		if s != nil {
			p.sinks = append(p.sinks, s)
		}
	}
	return p
}

// Emit delivers the event to every sink in registration order.
func (p *Probe) Emit(ev Event) {
	for _, s := range p.sinks {
		s.Handle(ev)
	}
}
