package metrics

import (
	"strings"
	"testing"
	"testing/quick"

	"pmsnet/internal/link"
	"pmsnet/internal/sim"
)

func TestComputeEmpty(t *testing.T) {
	r := Compute("net", "wl", 4, link.Paper(), nil, NetStats{})
	if r.Messages != 0 || r.Efficiency != 0 || r.Makespan != 0 {
		t.Fatalf("empty result = %+v", r)
	}
}

func TestComputeSingleMessage(t *testing.T) {
	lm := link.Paper()
	recs := []Record{{Src: 0, Dst: 1, Bytes: 800, Created: 0, Delivered: 2000}}
	r := Compute("net", "wl", 4, lm, recs, NetStats{})
	// 800 B at 6.4 Gb/s = 1000 ns ideal; makespan 2000 -> efficiency 0.5.
	if r.Ideal != 1000 {
		t.Fatalf("Ideal = %v, want 1000ns", r.Ideal)
	}
	if r.Efficiency != 0.5 {
		t.Fatalf("Efficiency = %v, want 0.5", r.Efficiency)
	}
	if r.Bytes != 800 || r.Messages != 1 {
		t.Fatal("counters wrong")
	}
	if r.LatencyMean != 2000 || r.LatencyMax != 2000 || r.LatencyP50 != 2000 {
		t.Fatalf("latencies = %v/%v/%v", r.LatencyMean, r.LatencyP50, r.LatencyMax)
	}
}

func TestBottleneckIsBusiestPort(t *testing.T) {
	lm := link.Paper()
	// Port 0 sends 2x800B; port 1 and 2 each receive 800B. Bottleneck is
	// port 0's output: 1600 B -> 2000 ns ideal.
	recs := []Record{
		{Src: 0, Dst: 1, Bytes: 800, Delivered: 4000},
		{Src: 0, Dst: 2, Bytes: 800, Delivered: 4000},
	}
	r := Compute("n", "w", 4, lm, recs, NetStats{})
	if r.Ideal != 2000 {
		t.Fatalf("Ideal = %v, want 2000ns", r.Ideal)
	}
	if r.Efficiency != 0.5 {
		t.Fatalf("Efficiency = %v, want 0.5", r.Efficiency)
	}
	// Incast: two senders to one destination — bottleneck is the input port.
	recs = []Record{
		{Src: 0, Dst: 2, Bytes: 800, Delivered: 4000},
		{Src: 1, Dst: 2, Bytes: 800, Delivered: 4000},
	}
	r = Compute("n", "w", 4, lm, recs, NetStats{})
	if r.Ideal != 2000 {
		t.Fatalf("incast Ideal = %v, want 2000ns", r.Ideal)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	var recs []Record
	for i := 1; i <= 100; i++ {
		recs = append(recs, Record{Src: 0, Dst: 1, Bytes: 8, Created: 0, Delivered: sim.Time(i)})
	}
	r := Compute("n", "w", 2, link.Paper(), recs, NetStats{})
	if r.LatencyP50 != 50 || r.LatencyP95 != 95 || r.LatencyMax != 100 {
		t.Fatalf("p50=%v p95=%v max=%v", r.LatencyP50, r.LatencyP95, r.LatencyMax)
	}
	if r.LatencyMean != 50 { // (1+...+100)/100 = 50.5 truncated
		t.Fatalf("mean = %v, want 50", r.LatencyMean)
	}
}

func TestComputePanicsOnCorruptRecords(t *testing.T) {
	for i, recs := range [][]Record{
		{{Src: 0, Dst: 1, Bytes: 8, Created: 10, Delivered: 5}},
		{{Src: 9, Dst: 1, Bytes: 8}},
		{{Src: 0, Dst: -1, Bytes: 8}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			Compute("n", "w", 4, link.Paper(), recs, NetStats{})
		}()
	}
}

func TestHitRate(t *testing.T) {
	if (NetStats{}).HitRate() != 0 {
		t.Fatal("empty stats hit rate should be 0")
	}
	s := NetStats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", s.HitRate())
	}
}

func TestResultString(t *testing.T) {
	r := Compute("tdm", "scatter", 4, link.Paper(),
		[]Record{{Src: 0, Dst: 1, Bytes: 8, Delivered: 100}}, NetStats{Hits: 1})
	s := r.String()
	if !strings.Contains(s, "tdm") || !strings.Contains(s, "scatter") {
		t.Fatalf("String = %q", s)
	}
}

func TestQuickEfficiencyBounded(t *testing.T) {
	// Efficiency can never exceed 1 when the makespan covers at least the
	// bottleneck serialization time (which any causal model guarantees);
	// here we synthesize records whose makespan is >= ideal by construction.
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		lm := link.Paper()
		var recs []Record
		var total int
		for _, s := range sizes {
			b := int(s)%2000 + 1
			total += b
			recs = append(recs, Record{Src: 0, Dst: 1, Bytes: b})
		}
		mk := lm.SerializationTime(total)
		for i := range recs {
			recs[i].Delivered = mk
		}
		r := Compute("n", "w", 2, lm, recs, NetStats{})
		return r.Efficiency > 0 && r.Efficiency <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "size", "wormhole", "tdm")
	tb.AddRowf(8, 0.5, 0.25)
	tb.AddRow("2048", "0.9", "0.8")
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	out := tb.String()
	for _, want := range []string{"Figure X", "size", "wormhole", "0.500", "2048"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestTablePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewTable("t") },
		func() { NewTable("t", "a", "b").AddRow("only-one") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
