package metrics

import (
	"strings"
	"testing"

	"pmsnet/internal/sim"
)

func TestHistogramBucketsAndExtremes(t *testing.T) {
	h := NewHistogram()
	if h.String() != "(no samples)\n" {
		t.Fatal("empty rendering wrong")
	}
	for _, v := range []int64{1, 2, 3, 100, 100, 5000} {
		h.Add(sim.Time(v))
	}
	if h.Count() != 6 || h.Min() != 1 || h.Max() != 5000 {
		t.Fatalf("count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
	out := h.String()
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars rendered:\n%s", out)
	}
	if len(strings.Split(strings.TrimRight(out, "\n"), "\n")) < 3 {
		t.Fatalf("expected several buckets:\n%s", out)
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	h := NewHistogram()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Add(-1)
}

func TestLatencyHistogramFromRecords(t *testing.T) {
	recs := []Record{
		{Src: 0, Dst: 1, Bytes: 8, Created: 0, Delivered: 100},
		{Src: 0, Dst: 1, Bytes: 8, Created: 50, Delivered: 250},
	}
	h := LatencyHistogram(recs)
	if h.Count() != 2 || h.Min() != 100 || h.Max() != 200 {
		t.Fatalf("histogram = count %d min %v max %v", h.Count(), h.Min(), h.Max())
	}
}
