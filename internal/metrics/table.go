package metrics

import (
	"fmt"
	"strings"
)

// Table renders aligned text tables for the figure/table harnesses: the
// same rows the paper's plots are drawn from, printable from benchmarks and
// the cmd/figures tool.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	if len(headers) == 0 {
		panic("metrics: table needs at least one column")
	}
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; the cell count must match the headers.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.headers) {
		panic(fmt.Sprintf("metrics: row has %d cells, table has %d columns", len(cells), len(t.headers)))
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted values: each value is rendered with %v,
// floats with three decimals.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.3f", v)
		case float32:
			out[i] = fmt.Sprintf("%.3f", v)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(out...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString("== " + t.title + " ==\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
