// Package metrics computes the run statistics the paper's figures report.
//
// Figure 4 and Figure 5 plot link efficiency against message size and
// determinism. We define efficiency as bottleneck-ideal time divided by
// measured makespan: the ideal time is the pure serialization time of the
// busiest port's traffic at the raw line rate, i.e. the time a perfectly
// pipelined, overhead-free network would need. An efficiency of 1.0 means
// the bottleneck link never idled and carried no overhead.
package metrics

import (
	"fmt"
	"sort"

	"pmsnet/internal/link"
	"pmsnet/internal/sim"
)

// Record is one delivered message.
type Record struct {
	Src, Dst, Bytes    int
	Created, Delivered sim.Time
}

// NetStats carries the network-model counters that the paper's discussion
// refers to (scheduler work, connection cache behaviour, slot utilization).
// Models fill in what applies to them; zero values mean "not applicable".
type NetStats struct {
	SchedulerPasses uint64
	Established     uint64
	Released        uint64
	Evictions       uint64
	Flushes         uint64
	// Hits counts messages whose connection was already established when
	// they reached the head of their queue; Misses counts those that had to
	// wait for scheduling. Their ratio is the connection-cache hit rate.
	Hits, Misses uint64
	// SchedCacheHits / SchedCacheMisses count memoized scheduling passes:
	// hits replayed a recorded grant set, misses ran the scheduling array.
	// Zero when the pass cache is disabled. These are performance counters,
	// not model state — every other field is bit-identical whether the
	// cache is on or off.
	SchedCacheHits, SchedCacheMisses uint64
	// SchedWarmHits / SchedWarmMisses count warm-started scheduling passes:
	// hits repaired the previous pass's masks incrementally from the request
	// journal, misses rebuilt them from scratch. SchedDirtyRows totals the
	// rows re-evaluated across incremental passes. Zero unless warm-start
	// scheduling is enabled; like the cache counters these are pure
	// performance telemetry — the only fields allowed to differ between
	// warm-on and warm-off runs.
	SchedWarmHits, SchedWarmMisses, SchedDirtyRows uint64
	// SlotsUsed / SlotsTotal measure TDM slot utilization: a used slot
	// carried at least one byte.
	SlotsUsed, SlotsTotal uint64
	// Preloads counts configuration groups loaded by the preload controller.
	Preloads uint64
	// Planner names the preload planner that computed the pinned schedule
	// ("solstice", "bvn", ...); empty when the preloads were hand-written
	// (no planner configured). The Plan* counters below describe its
	// schedule: PlanConfigs distinct planned configurations, PlanGroups
	// configuration groups, PlanResidualConns connections the plan spilled
	// to the dynamic path, PlanDrainSlots the planner's own drain estimate
	// in slots (reconfiguration charges included, rounded up). All zero
	// without a planner.
	Planner                                                    string
	PlanConfigs, PlanGroups, PlanResidualConns, PlanDrainSlots uint64
	// Amplifications counts extra slots granted to hot connections
	// (bandwidth amplification, core extension 2).
	Amplifications uint64
	// Faults carries the fault-injection and recovery counters when the run
	// had a fault plan.
	Faults FaultStats
}

// FaultStats accounts for injected faults and the recovery work they caused.
// The accounting invariant is exact: every message the workload injected is
// either delivered (possibly after retries) or explicitly dropped —
// Injected == Delivered + Dropped, checked by Reconciles.
type FaultStats struct {
	// Enabled is true when the run had an active fault plan.
	Enabled bool

	// Injected-fault tallies.
	LinkFailures     uint64
	LinkRepairs      uint64
	CrosspointDeaths uint64
	Corrupted        uint64
	RequestsLost     uint64
	GrantsLost       uint64

	// Recovery tallies.
	// Retries counts retransmissions and control-token re-sends.
	Retries uint64
	// Reschedules counts connections the scheduler evicted to route around
	// a fault (and that dynamic scheduling must re-establish on demand).
	Reschedules uint64
	// PreloadFallbacks counts preloaded connections invalidated by a fault,
	// whose traffic fell back to dynamic scheduling.
	PreloadFallbacks uint64
	// MaskedGrants counts TDM slot grants wasted because the granted pair's
	// link was down or crosspoint dead.
	MaskedGrants uint64

	// Message accounting.
	Injected  uint64
	Delivered uint64
	Dropped   uint64

	// DegradedTime is the simulated time during which at least one fault
	// was active.
	DegradedTime sim.Time
}

// Reconciles reports whether the message accounting balances exactly:
// Injected == Delivered + Dropped. It is vacuously true without a fault
// plan.
func (f FaultStats) Reconciles() bool {
	if !f.Enabled {
		return true
	}
	return f.Injected == f.Delivered+f.Dropped
}

// HitRate returns Hits/(Hits+Misses), or 0 when no lookups happened.
func (s NetStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Result is the outcome of one simulation run.
type Result struct {
	Network  string
	Workload string
	N        int

	Messages int
	Bytes    int64
	// Makespan is the delivery time of the last message.
	Makespan sim.Time
	// Ideal is the bottleneck port's pure serialization time.
	Ideal sim.Time
	// Efficiency = Ideal / Makespan in [0,1].
	Efficiency float64

	LatencyMean sim.Time
	LatencyP50  sim.Time
	LatencyP95  sim.Time
	LatencyMax  sim.Time

	// FairnessJain is Jain's fairness index over the per-source mean
	// latencies: 1.0 when every sending processor sees the same mean
	// latency, approaching 1/sources when one processor is starved. The
	// scheduler's priority-rotation ablation reads this column.
	FairnessJain float64

	// Latencies is the log-bucketed latency histogram of the run.
	Latencies *Histogram

	Stats NetStats
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s on %s: %d msgs, %d B, makespan %v, efficiency %.3f (hit rate %.2f)",
		r.Network, r.Workload, r.Messages, r.Bytes, r.Makespan, r.Efficiency, r.Stats.HitRate())
}

// Compute assembles a Result from delivered-message records.
//
// It panics if any record is undelivered (Delivered before Created) — a
// model that loses messages is broken, and silently computing an efficiency
// for it would hide the bug.
func Compute(network, workload string, n int, lm link.Model, recs []Record, stats NetStats) Result {
	res := Result{Network: network, Workload: workload, N: n, Messages: len(recs), Stats: stats}
	if len(recs) == 0 {
		return res
	}

	outBytes := make([]int64, n)
	inBytes := make([]int64, n)
	lat := make([]sim.Time, 0, len(recs))
	var latSum int64
	for _, r := range recs {
		if r.Delivered < r.Created {
			panic(fmt.Sprintf("metrics: message %d->%d delivered at %v before created at %v",
				r.Src, r.Dst, r.Delivered, r.Created))
		}
		if r.Src < 0 || r.Src >= n || r.Dst < 0 || r.Dst >= n {
			panic(fmt.Sprintf("metrics: record endpoints %d->%d outside %d ports", r.Src, r.Dst, n))
		}
		res.Bytes += int64(r.Bytes)
		outBytes[r.Src] += int64(r.Bytes)
		inBytes[r.Dst] += int64(r.Bytes)
		if r.Delivered > res.Makespan {
			res.Makespan = r.Delivered
		}
		l := r.Delivered - r.Created
		lat = append(lat, l)
		latSum += int64(l)
	}

	var maxPortBytes int64
	for p := 0; p < n; p++ {
		if outBytes[p] > maxPortBytes {
			maxPortBytes = outBytes[p]
		}
		if inBytes[p] > maxPortBytes {
			maxPortBytes = inBytes[p]
		}
	}
	res.Ideal = lm.SerializationTime(int(maxPortBytes))
	if res.Makespan > 0 {
		res.Efficiency = float64(res.Ideal) / float64(res.Makespan)
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.LatencyMean = sim.Time(latSum / int64(len(lat)))
	res.LatencyP50 = percentile(lat, 50)
	res.LatencyP95 = percentile(lat, 95)
	res.LatencyMax = lat[len(lat)-1]
	res.FairnessJain = jainIndex(recs, n)
	res.Latencies = LatencyHistogram(recs)
	return res
}

// jainIndex computes Jain's fairness index over per-source mean latencies.
func jainIndex(recs []Record, n int) float64 {
	sums := make([]int64, n)
	counts := make([]int64, n)
	for _, r := range recs {
		sums[r.Src] += int64(r.Delivered - r.Created)
		counts[r.Src]++
	}
	var sum, sumSq float64
	sources := 0
	for p := 0; p < n; p++ {
		if counts[p] == 0 {
			continue
		}
		mean := float64(sums[p]) / float64(counts[p])
		sum += mean
		sumSq += mean * mean
		sources++
	}
	if sources == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(sources) * sumSq)
}

// percentile returns the nearest-rank percentile of a sorted slice.
func percentile(sorted []sim.Time, p int) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * len)
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
