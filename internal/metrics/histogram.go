package metrics

import (
	"fmt"
	"strings"

	"pmsnet/internal/sim"
)

// Histogram is a logarithmic latency histogram: bucket i counts latencies in
// [2^i, 2^(i+1)) nanoseconds, with bucket 0 also holding sub-nanosecond
// values. It renders as an ASCII bar chart for pmsim and debugging output.
type Histogram struct {
	buckets []uint64
	count   uint64
	min     sim.Time
	max     sim.Time
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]uint64, 40)}
}

// Add records one latency sample. Negative latencies panic: they indicate a
// causality bug upstream.
func (h *Histogram) Add(l sim.Time) {
	if l < 0 {
		panic(fmt.Sprintf("metrics: negative latency %v", l))
	}
	b := 0
	for v := l; v > 1; v >>= 1 {
		b++
	}
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b]++
	if h.count == 0 || l < h.min {
		h.min = l
	}
	if l > h.max {
		h.max = l
	}
	h.count++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Min and Max return the extreme samples (zero when empty).
func (h *Histogram) Min() sim.Time { return h.min }

// Max returns the largest sample.
func (h *Histogram) Max() sim.Time { return h.max }

// String renders the non-empty bucket range as aligned bars.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "(no samples)\n"
	}
	lo, hi := -1, 0
	var peak uint64
	for i, c := range h.buckets {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
			if c > peak {
				peak = c
			}
		}
	}
	var sb strings.Builder
	for i := lo; i <= hi; i++ {
		c := h.buckets[i]
		width := 0
		if peak > 0 {
			width = int(c * 40 / peak)
		}
		if c > 0 && width == 0 {
			width = 1
		}
		fmt.Fprintf(&sb, "%10v..%-10v %8d %s\n",
			sim.Time(1)<<uint(i), sim.Time(1)<<uint(i+1), c, strings.Repeat("#", width))
	}
	return sb.String()
}

// LatencyHistogram builds a histogram from delivery records.
func LatencyHistogram(recs []Record) *Histogram {
	h := NewHistogram()
	for _, r := range recs {
		h.Add(r.Delivered - r.Created)
	}
	return h
}
