package pmsnet

import (
	"io"
	"time"

	"pmsnet/internal/probe"
	"pmsnet/internal/sim"
)

// Probe fans typed simulation events out to its sinks. Attach one to
// Config.Probe to observe a run; a nil probe costs a single pointer check
// per emission site on the hot path and nothing else.
type Probe = probe.Probe

// ProbeEvent is one typed simulation event: what happened (Kind), when (At,
// simulated nanoseconds) and the kind-specific payload fields.
type ProbeEvent = probe.Event

// ProbeKind discriminates ProbeEvent payloads (slot, scheduler, connection,
// message and fault lifecycle).
type ProbeKind = probe.Kind

// ProbeSink consumes probe events. Sinks run synchronously on the
// simulation goroutine; Handle must not block.
type ProbeSink = probe.Sink

// CounterSink tallies events by kind — the cheapest way to check what a
// run emitted.
type CounterSink = probe.CounterSink

// TimelineSink samples slot utilization and queue depth into fixed-width
// time buckets, producing the data behind utilization/backlog curves.
type TimelineSink = probe.TimelineSink

// TimelineSample is one TimelineSink bucket.
type TimelineSample = probe.Sample

// TraceWriter streams events as Chrome trace-event JSON (load the file in
// Perfetto or chrome://tracing). Close it after the run to finish the JSON
// array and flush.
type TraceWriter = probe.TraceWriter

// NewProbe builds a probe fanning events out to the given sinks; nil sinks
// are skipped.
func NewProbe(sinks ...ProbeSink) *Probe { return probe.New(sinks...) }

// NewCounterSink builds an event-count sink.
func NewCounterSink() *CounterSink { return probe.NewCounterSink() }

// NewTimelineSink builds a time-series sampler with the given bucket width;
// non-positive intervals default to 1µs.
func NewTimelineSink(interval time.Duration) *TimelineSink {
	return probe.NewTimelineSink(sim.Time(interval.Nanoseconds()))
}

// NewTraceWriter builds a Chrome trace-event JSON sink writing to w.
func NewTraceWriter(w io.Writer) *TraceWriter { return probe.NewTraceWriter(w) }
